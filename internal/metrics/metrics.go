// Package metrics provides the lightweight engine telemetry of the
// synthesis stack: named counters and latency histograms behind a minimal
// Sink interface, with a concurrency-safe stdlib-only Registry
// implementation. The engine records candidates explored, evaluation-cache
// hits and misses, learner fan-out, and per-phase latency; flashbench
// -metrics-json and Session.Stats surface the snapshots.
package metrics

import (
	"context"
	"encoding/json"
	"math"
	"sort"
	"sync"
)

// Canonical metric names recorded by the synthesis stack. Keeping them in
// one place makes the schema greppable and stable for consumers of
// -metrics-json (see EXPERIMENTS.md).
//
// Naming scheme: every name is snake_case with a subsystem prefix joined
// by underscores, so each is a valid Prometheus metric name as-is — the
// /metrics exposition endpoint renders them without mangling. (Before the
// observability layer landed, names mixed a dot-delimited style, e.g.
// "synth.candidates_explored" and "batch.docs_processed"; consumers of
// -metrics-json written against those names must switch to the underscore
// forms below. The constant identifiers did not change.)
const (
	// CandidatesExplored counts candidate programs generated and examined
	// by the learners and the validation loop of one synthesis call.
	CandidatesExplored = "synth_candidates_explored"
	// CacheHits / CacheMisses count document evaluation cache probes.
	CacheHits   = "cache_hits"
	CacheMisses = "cache_misses"
	// LearnerFanout counts learners dispatched by Union combinators.
	LearnerFanout = "core_learner_fanout"
	// LearnCalls counts synthesis driver invocations.
	LearnCalls = "synth_learn_calls"
	// PartialResults counts synthesis calls that exhausted their budget.
	PartialResults = "synth_partial_results"
	// PhaseLearn / PhaseValidate are the per-phase latency histograms of
	// the Algorithm 2 driver: DSL learning vs. execute-and-check candidate
	// validation. Values are seconds.
	PhaseLearn    = "synth_phase_learn_seconds"
	PhaseValidate = "synth_phase_validate_seconds"
	// IncrementalHits counts interactive Learn calls served by intersecting
	// the session's retained candidate set with the extended example spec
	// instead of a cold re-synthesis.
	IncrementalHits = "synth_incremental_hits"
	// IncrementalFallbacks counts interactive Learn calls that had retained
	// candidate state but fell back to a cold re-synthesis (stale committed
	// highlighting, removed examples, budget-truncated state, or no
	// surviving candidate).
	IncrementalFallbacks = "synth_incremental_fallbacks"
	// CandidatesPruned counts candidate programs rejected by the abstract
	// semantics before concrete execution (see internal/abstract).
	CandidatesPruned = "synth_candidates_pruned"
	// AbstractionRefinements counts spurious abstract survivors fed back
	// into the refinement store (a candidate the abstraction admitted but
	// the concrete consistency check rejected).
	AbstractionRefinements = "synth_abstraction_refinements"

	// BatchDocs counts documents processed by the batch runtime (result
	// and error records alike).
	BatchDocs = "batch_docs_processed"
	// BatchErrors counts batch documents that yielded an error record.
	BatchErrors = "batch_errors"
	// BatchDocSeconds is the per-document end-to-end run latency histogram
	// of the batch runtime (open + extract + render). Values are seconds.
	BatchDocSeconds = "batch_doc_run_seconds"
	// BatchRetries counts retried document-read attempts in the batch
	// worker pool (attempts beyond each document's first read).
	BatchRetries = "batch_retries"
	// BatchPrefilterSkipped counts documents the static admission test
	// rejected — runs short-circuited to the precomputed empty result
	// without building a document or evaluation cache.
	BatchPrefilterSkipped = "batch_prefilter_skipped"
	// BatchDedupHits counts documents whose content digest matched an
	// already-extracted blob in this run, replayed from the in-run store.
	BatchDedupHits = "batch_dedup_hits"
	// BatchResumeHits counts documents replayed from a persisted resume
	// manifest instead of re-extracted.
	BatchResumeHits = "batch_resume_hits"
	// BatchShardDropped counts documents outside this process's hash-range
	// shard, dropped without a record.
	BatchShardDropped = "batch_shard_dropped"

	// ServeRequests counts protocol frames handled by the extraction
	// server (every op, ok and error responses alike).
	ServeRequests = "serve_requests"
	// ServeErrors counts requests answered with an error frame.
	ServeErrors = "serve_errors"
	// ServeOverloaded counts requests rejected by the in-flight
	// backpressure limit (a subset of ServeErrors).
	ServeOverloaded = "serve_overloaded"
	// ServeReloads counts successful program-registry reloads (the reload
	// op and SIGHUP alike).
	ServeReloads = "serve_reloads"
	// ServeFrameSeconds is the end-to-end request latency histogram of the
	// extraction server (decode through response write). Values are seconds.
	ServeFrameSeconds = "serve_frame_seconds"
	// ServeExplainRequests counts explain ops (a subset of ServeRequests):
	// scans run with execution capture that return provenance frames.
	ServeExplainRequests = "serve_explain_requests"
	// ServeExplainErrors counts explain ops answered with an error frame
	// (a subset of ServeErrors).
	ServeExplainErrors = "serve_explain_errors"
)

// Sink is the minimal recording interface the synthesis stack writes to.
// Implementations must be safe for concurrent use.
type Sink interface {
	// Count adds delta to the named counter.
	Count(name string, delta int64)
	// Observe records one sample of the named histogram.
	Observe(name string, v float64)
}

// nopSink discards every record.
type nopSink struct{}

func (nopSink) Count(string, int64)     {}
func (nopSink) Observe(string, float64) {}

// Nop is a Sink that records nothing. It is the default when no registry
// is installed, so recording call sites never need nil checks.
var Nop Sink = nopSink{}

// Registry is the stdlib Sink implementation: a named set of counters and
// histograms that can be snapshotted as JSON.
type Registry struct {
	mu    sync.Mutex
	count map[string]int64
	hist  map[string]*histogram
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{count: map[string]int64{}, hist: map[string]*histogram{}}
}

// Count implements Sink.
func (r *Registry) Count(name string, delta int64) {
	r.mu.Lock()
	r.count[name] += delta
	r.mu.Unlock()
}

// Observe implements Sink.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	h := r.hist[name]
	if h == nil {
		h = &histogram{min: math.Inf(1), max: math.Inf(-1)}
		r.hist[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// Counter returns the current value of a counter (0 when never recorded).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count[name]
}

// histogram is a streaming summary: count, sum, min, max, and a small set
// of powers-of-two latency buckets (upper bounds in seconds).
type histogram struct {
	count    int64
	sum      float64
	min, max float64
	buckets  [len(bucketBounds) + 1]int64
}

// bucketBounds are the histogram's upper bounds in seconds, spanning the
// latencies synthesis phases exhibit (0.1ms .. ~26s); the final implicit
// bucket is +Inf.
var bucketBounds = [...]float64{
	0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384, 6.5536, 26.2144,
}

func (h *histogram) observe(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	i := sort.SearchFloat64s(bucketBounds[:], v)
	h.buckets[i]++
}

// BucketCount is one histogram bucket of a snapshot: the bucket's upper
// bound rendered as a string ("+Inf" for the final bucket) and the number
// of samples that fell in it (non-cumulative).
type BucketCount struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramStats is the exported summary of one histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// P50/P90/P99 are quantile estimates, linearly interpolated within the
	// bucket that contains the quantile and clamped to [Min, Max]. They are
	// estimates with bucket-width resolution, not exact order statistics.
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	// Buckets lists every bucket in ascending bound order with "+Inf"
	// last — a stable order regardless of which buckets received samples,
	// so JSON output and the Prometheus renderer are deterministic.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, JSON-marshalable.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.count)),
		Histograms: make(map[string]HistogramStats, len(r.hist)),
	}
	for k, v := range r.count {
		s.Counters[k] = v
	}
	for k, h := range r.hist {
		hs := HistogramStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		if h.count > 0 {
			hs.Mean = h.sum / float64(h.count)
		} else {
			hs.Min, hs.Max = 0, 0
		}
		hs.Buckets = make([]BucketCount, 0, len(h.buckets))
		for i, n := range h.buckets {
			le := "+Inf"
			if i < len(bucketBounds) {
				le = formatBound(bucketBounds[i])
			}
			hs.Buckets = append(hs.Buckets, BucketCount{Le: le, Count: n})
		}
		hs.P50 = h.quantile(0.50)
		hs.P90 = h.quantile(0.90)
		hs.P99 = h.quantile(0.99)
		s.Histograms[k] = hs
	}
	return s
}

// quantile estimates the q-th quantile (0 < q < 1) from the bucket counts
// by linear interpolation within the containing bucket, clamped to the
// observed [min, max]. Zero is returned for an empty histogram.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if float64(cum) < rank || n == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bucketBounds[i-1]
		}
		hi := h.max
		if i < len(bucketBounds) && bucketBounds[i] < hi {
			hi = bucketBounds[i]
		}
		if hi < lo {
			hi = lo
		}
		// Position of the rank within this bucket's count.
		frac := (rank - float64(cum-n)) / float64(n)
		v := lo + frac*(hi-lo)
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

func formatBound(b float64) string {
	out, _ := json.Marshal(b)
	return string(out)
}

// MarshalJSON renders the snapshot of the registry.
func (r *Registry) MarshalJSON() ([]byte, error) { return json.Marshal(r.Snapshot()) }

// sinkKey keys the Sink installed in a context.
type sinkKey struct{}

// Into returns a context carrying the sink; the synthesis stack records
// into it for the duration of calls made with the context.
func Into(ctx context.Context, s Sink) context.Context {
	return context.WithValue(ctx, sinkKey{}, s)
}

// From returns the sink carried by the context, or Nop when none is
// installed. The result is never nil.
func From(ctx context.Context) Sink {
	if ctx == nil {
		return Nop
	}
	if s, ok := ctx.Value(sinkKey{}).(Sink); ok && s != nil {
		return s
	}
	return Nop
}
