package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as counter metrics, histograms as
// histogram metrics with cumulative _bucket series, _sum, and _count.
// Metric names are emitted in sorted order and every histogram lists its
// buckets in ascending bound order with le="+Inf" last, so the output is
// byte-deterministic for a given snapshot. Names already follow the
// snake_case scheme of this package; sanitizeName is a safety net for
// sinks fed by external callers.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := sanitizeName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}

	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		n := sanitizeName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, b.Le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, formatFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeName maps an arbitrary metric name onto the Prometheus name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every invalid rune with '_'.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trippable decimal form).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
