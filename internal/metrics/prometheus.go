package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// helpText carries the one-line # HELP description of each canonical
// metric name. Names outside this map (external sinks) fall back to a
// generic line so the exposition always pairs HELP with TYPE.
var helpText = map[string]string{
	CandidatesExplored:    "Candidate programs generated and examined per synthesis call.",
	CacheHits:             "Document evaluation cache probes that hit.",
	CacheMisses:           "Document evaluation cache probes that missed.",
	LearnerFanout:         "Learners dispatched by Union combinators.",
	LearnCalls:            "Synthesis driver invocations.",
	PartialResults:        "Synthesis calls that exhausted their budget.",
	PhaseLearn:            "DSL learning phase latency in seconds.",
	PhaseValidate:         "Candidate validation phase latency in seconds.",
	IncrementalHits:       "Interactive Learn calls served by candidate-set intersection.",
	IncrementalFallbacks:  "Interactive Learn calls that fell back to cold re-synthesis.",
	BatchDocs:             "Documents processed by the batch runtime.",
	BatchErrors:           "Batch documents that yielded an error record.",
	BatchDocSeconds:       "Per-document end-to-end batch run latency in seconds.",
	BatchRetries:          "Retried document-read attempts in the batch worker pool.",
	BatchPrefilterSkipped: "Documents rejected by the static admission prefilter.",
	BatchDedupHits:        "Documents replayed from the in-run content-digest store.",
	BatchResumeHits:       "Documents replayed from a persisted resume manifest.",
	BatchShardDropped:     "Documents outside this process's hash-range shard.",
	ServeRequests:         "Protocol frames handled by the extraction server.",
	ServeErrors:           "Requests answered with an error frame.",
	ServeOverloaded:       "Requests rejected by the in-flight backpressure limit.",
	ServeReloads:          "Successful program-registry reloads.",
	ServeFrameSeconds:     "End-to-end request latency of the extraction server in seconds.",
	ServeExplainRequests:  "Explain ops: scans run with execution capture.",
	ServeExplainErrors:    "Explain ops answered with an error frame.",
}

// helpFor returns the HELP description for a metric name, falling back to
// a generic line for names outside the canonical set.
func helpFor(name, kind string) string {
	if h, ok := helpText[name]; ok {
		return h
	}
	return "flashextract " + kind + " metric."
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as counter metrics, histograms as
// histogram metrics with cumulative _bucket series, _sum, and _count.
// Every metric is preceded by its # HELP and # TYPE lines (HELP first, as
// the format requires). Metric names are emitted in sorted order and every
// histogram lists its buckets in ascending bound order with le="+Inf"
// last, so the output is byte-deterministic for a given snapshot. Names
// already follow the snake_case scheme of this package; sanitizeName is a
// safety net for sinks fed by external callers.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := sanitizeName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			n, helpFor(name, "counter"), n, n, s.Counters[name]); err != nil {
			return err
		}
	}

	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		n := sanitizeName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
			n, helpFor(name, "histogram"), n); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, b.Le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, formatFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeName maps an arbitrary metric name onto the Prometheus name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every invalid rune with '_'.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trippable decimal form).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
