package abstract

import (
	"fmt"
	"sync"
	"testing"
)

func TestIntervalConstructors(t *testing.T) {
	if iv := Exact(3); iv.Lo != 3 || iv.Hi != 3 || iv.Top {
		t.Fatalf("Exact(3) = %v", iv)
	}
	if iv := Exact(-2); iv.Lo != 0 || iv.Hi != 0 {
		t.Fatalf("Exact(-2) = %v, want clamped to 0", iv)
	}
	if iv := Range(-1, 5); iv.Lo != 0 || iv.Hi != 5 {
		t.Fatalf("Range(-1,5) = %v", iv)
	}
	if iv := Range(4, 2); iv.Lo != 4 || iv.Hi != 4 {
		t.Fatalf("Range(4,2) = %v, want normalized", iv)
	}
	if !TopInterval().Top {
		t.Fatal("TopInterval not ⊤")
	}
}

func TestIntervalAtLeast(t *testing.T) {
	if !TopInterval().AtLeast(1 << 30) {
		t.Fatal("⊤ must admit every count")
	}
	if !Range(0, 2).AtLeast(2) {
		t.Fatal("[0,2] admits 2")
	}
	if Range(0, 2).AtLeast(3) {
		t.Fatal("[0,2] must reject 3")
	}
	if !Exact(0).AtLeast(0) {
		t.Fatal("[0,0] admits 0")
	}
}

func TestIntervalJoinAdd(t *testing.T) {
	if j := Range(1, 3).Join(Range(2, 7)); j.Lo != 1 || j.Hi != 7 {
		t.Fatalf("join = %v", j)
	}
	if !Range(1, 3).Join(TopInterval()).Top {
		t.Fatal("join with ⊤ must be ⊤")
	}
	if s := Range(1, 3).Add(Exact(2)); s.Lo != 3 || s.Hi != 5 {
		t.Fatalf("add = %v", s)
	}
	if !TopInterval().Add(Exact(1)).Top {
		t.Fatal("⊤ + x must be ⊤")
	}
}

// TestFilterStrideExact checks the FilterInt count transform against the
// concrete index-selection semantics on every small (n, init, iter).
func TestFilterStrideExact(t *testing.T) {
	concrete := func(n, init, iter int) int {
		kept := 0
		for i := init; i >= 0 && i < n; i += iter {
			kept++
		}
		return kept
	}
	for n := 0; n <= 8; n++ {
		for init := 0; init <= 4; init++ {
			for iter := 1; iter <= 4; iter++ {
				got := Exact(n).FilterStride(init, iter)
				want := concrete(n, init, iter)
				if got.Top || got.Lo != want || got.Hi != want {
					t.Fatalf("FilterStride(n=%d, init=%d, iter=%d) = %v, want exact %d",
						n, init, iter, got, want)
				}
			}
		}
	}
	if !TopInterval().FilterStride(0, 1).Top {
		t.Fatal("⊤ through FilterStride must stay ⊤")
	}
	if !Exact(5).FilterStride(0, 0).Top {
		t.Fatal("iter <= 0 must degrade to ⊤, not panic")
	}
}

func TestSpanCovers(t *testing.T) {
	doc := &struct{ name string }{"doc"}
	other := &struct{ name string }{"other"}
	s := NewSpan(doc, 10, 20)
	if !s.Covers(doc, 10, 20) || !s.Covers(doc, 12, 15) {
		t.Fatal("span must cover contained ranges")
	}
	if s.Covers(doc, 9, 12) || s.Covers(doc, 15, 21) {
		t.Fatal("span must reject ranges poking out")
	}
	if !s.Covers(other, 0, 100) {
		t.Fatal("space mismatch means no information — must not reject")
	}
	if !TopSpan().Covers(doc, -5, 1<<30) {
		t.Fatal("⊤ covers everything")
	}
	if !NewSpan(nil, 0, 1).Top {
		t.Fatal("nil space must degrade to ⊤")
	}
}

func TestSpanJoin(t *testing.T) {
	doc := &struct{}{}
	j := NewSpan(doc, 5, 10).Join(NewSpan(doc, 8, 20))
	if j.Top || j.Lo != 5 || j.Hi != 20 {
		t.Fatalf("join = %v", j)
	}
	if !NewSpan(doc, 0, 1).Join(TopSpan()).Top {
		t.Fatal("join with ⊤ must be ⊤")
	}
	if !NewSpan(doc, 0, 1).Join(NewSpan(&struct{}{}, 0, 1)).Top {
		t.Fatal("cross-space join must be ⊤")
	}
}

func TestSeqScalarConstructors(t *testing.T) {
	if s := TopSeq(); s.Infeasible || !s.Count.Top || !s.Span.Top {
		t.Fatalf("TopSeq = %+v", s)
	}
	if !InfeasibleSeq().Infeasible || !InfeasibleScalar().Infeasible {
		t.Fatal("⊥ constructors broken")
	}
	if s := TopScalar(); s.Infeasible || !s.Span.Top {
		t.Fatalf("TopScalar = %+v", s)
	}
}

func TestCtxRefineExact(t *testing.T) {
	c := NewCtx()
	k := Key{Lo: 3, Hi: 40, Fp: 0xbeef}
	if _, ok := c.Exact(k); ok {
		t.Fatal("empty store must miss")
	}
	c.Refine(k, 7)
	if n, ok := c.Exact(k); !ok || n != 7 {
		t.Fatalf("Exact = %d,%v", n, ok)
	}
	c.Refine(k, 9) // updating an existing fact is allowed
	if n, _ := c.Exact(k); n != 9 {
		t.Fatalf("Exact = %d after update", n)
	}
	c.Refine(Key{Fp: 1}, -1)
	if _, ok := c.Exact(Key{Fp: 1}); ok {
		t.Fatal("negative counts must be ignored")
	}
	if c.StoreSize() != 1 {
		t.Fatalf("StoreSize = %d", c.StoreSize())
	}
}

func TestCtxStoreWideningCap(t *testing.T) {
	c := NewCtx()
	for i := 0; i < storeCap+100; i++ {
		c.Refine(Key{Lo: i, Fp: uint64(i)}, i)
	}
	if c.StoreSize() != storeCap {
		t.Fatalf("StoreSize = %d, want capped at %d", c.StoreSize(), storeCap)
	}
	// Existing facts stay refinable past the cap.
	c.Refine(Key{Lo: 0, Fp: 0}, 42)
	if n, ok := c.Exact(Key{Lo: 0, Fp: 0}); !ok || n != 42 {
		t.Fatalf("existing fact not refinable past cap: %d,%v", n, ok)
	}
}

func TestCtxCountersAndNilSafety(t *testing.T) {
	c := NewCtx()
	c.CountPruned()
	c.CountPruned()
	c.CountRefinement()
	c.CountReplay()
	if c.Pruned() != 2 || c.Refinements() != 1 || c.Replays() != 1 {
		t.Fatalf("counters = %d/%d/%d", c.Pruned(), c.Refinements(), c.Replays())
	}
	var nilCtx *Ctx
	nilCtx.CountPruned()
	nilCtx.CountRefinement()
	nilCtx.CountReplay()
	nilCtx.Refine(Key{}, 1)
	if _, ok := nilCtx.Exact(Key{}); ok {
		t.Fatal("nil ctx must miss")
	}
	if nilCtx.Pruned() != 0 || nilCtx.Refinements() != 0 || nilCtx.Replays() != 0 || nilCtx.StoreSize() != 0 {
		t.Fatal("nil ctx counters must read 0")
	}
}

func TestCtxConcurrentUse(t *testing.T) {
	c := NewCtx()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{Lo: i % 16, Fp: uint64(g)}
				c.Refine(k, i)
				c.Exact(k)
				c.CountPruned()
			}
		}(g)
	}
	wg.Wait()
	if c.Pruned() != 8*200 {
		t.Fatalf("Pruned = %d", c.Pruned())
	}
}

func TestStringForms(t *testing.T) {
	for _, tt := range []struct {
		got, want string
	}{
		{TopInterval().String(), "⊤"},
		{Range(1, 4).String(), "[1,4]"},
		{TopSpan().String(), "⊤"},
		{fmt.Sprint(Span{Space: "d", Lo: 2, Hi: 9}), "[2,9)"},
	} {
		if tt.got != tt.want {
			t.Fatalf("String = %q, want %q", tt.got, tt.want)
		}
	}
}
