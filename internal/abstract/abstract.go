// Package abstract implements the abstract semantics the core learners use
// to prune candidate programs before concrete execution, following the
// abstraction-refinement discipline of Wang, Dillig & Singh (Program
// Synthesis using Abstraction Refinement, 1710.07740). A candidate is
// abstract-evaluated to a cheap over-approximation of its concrete result —
// a match-count interval and a coarse byte-range bound — and is rejected
// when that over-approximation already contradicts an example. Soundness is
// the only obligation: the abstraction of a program must contain every
// result its concrete execution can produce, so a rejection proves the
// concrete consistency check would also have failed and ranked output stays
// bit-identical to the unpruned path.
//
// The lattice is deliberately small:
//
//	Interval  — a [Lo, Hi] bound on how many elements a sequence program
//	            can produce, with a ⊤ element ("no information").
//	Span      — a coarse [Lo, Hi) byte/position bound, tagged with the
//	            value space it ranges over, again with ⊤.
//	Seq       — the abstraction of a sequence program: feasibility,
//	            count interval, output span.
//	Scalar    — the abstraction of a scalar program: feasibility, span.
//
// ⊥ is represented by the Infeasible flag on Seq/Scalar: the concrete
// execution provably fails (or provably produces nothing an example needs).
// Operators without a transformer degrade to ⊤, which admits everything —
// unsupported constructs are never a soundness risk, only a precision loss.
//
// Ctx is the per-synthesis refinement state: when a candidate passes the
// abstract check but fails concretely (a spurious survivor), the learners
// tighten the offending interval by recording the exact concrete match
// count, keyed by input range and token-pair fingerprint, so the same
// imprecision is not paid twice. The store is size-capped as a widening —
// beyond the cap new refinements are dropped and the abstraction simply
// stays coarse.
package abstract

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Interval is a bound on a non-negative count: the concrete count n is
// known to satisfy Lo <= n <= Hi, unless Top is set, in which case nothing
// is known. The zero value is the exact count 0.
type Interval struct {
	Lo, Hi int
	Top    bool
}

// TopInterval returns the ⊤ interval (no information).
func TopInterval() Interval { return Interval{Top: true} }

// Exact returns the singleton interval [n, n].
func Exact(n int) Interval {
	if n < 0 {
		n = 0
	}
	return Interval{Lo: n, Hi: n}
}

// Range returns the interval [lo, hi], clamped to non-negative bounds and
// normalized so Lo <= Hi.
func Range(lo, hi int) Interval {
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	return Interval{Lo: lo, Hi: hi}
}

// AtLeast reports whether the interval admits a count of at least n. ⊤
// admits everything.
func (iv Interval) AtLeast(n int) bool { return iv.Top || iv.Hi >= n }

// Join returns the least interval containing both operands (lattice join).
func (iv Interval) Join(o Interval) Interval {
	if iv.Top || o.Top {
		return TopInterval()
	}
	lo, hi := iv.Lo, iv.Hi
	if o.Lo < lo {
		lo = o.Lo
	}
	if o.Hi > hi {
		hi = o.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Add returns the interval of the sum of two independent counts (used for
// Merge, whose output is at most the concatenation of its arguments).
func (iv Interval) Add(o Interval) Interval {
	if iv.Top || o.Top {
		return TopInterval()
	}
	return Interval{Lo: iv.Lo + o.Lo, Hi: iv.Hi + o.Hi}
}

// FilterStride transforms a count interval through FilterInt(init, iter)
// index selection: from a sequence of n elements the filter keeps
// 0 if n <= init, else (n-1-init)/iter + 1. The transform is monotone in
// n, so it maps [Lo, Hi] to [f(Lo), f(Hi)] exactly.
func (iv Interval) FilterStride(init, iter int) Interval {
	if iv.Top {
		return TopInterval()
	}
	if iter <= 0 {
		// Concrete FilterInt errors on iter <= 0; the caller treats the
		// candidate as infeasible before consulting the count. ⊤ keeps this
		// helper total and sound regardless.
		return TopInterval()
	}
	f := func(n int) int {
		if n <= init || init < 0 {
			return 0
		}
		return (n-1-init)/iter + 1
	}
	return Interval{Lo: f(iv.Lo), Hi: f(iv.Hi)}
}

func (iv Interval) String() string {
	if iv.Top {
		return "⊤"
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// Span is a coarse bound on where a program's output values can lie: every
// output value whose location is an interval (space, start, end) with
// space == Span.Space is known to satisfy Lo <= start and end <= Hi. Top
// (or a space mismatch) means no information.
type Span struct {
	Space  any
	Lo, Hi int
	Top    bool
}

// TopSpan returns the ⊤ span (no information).
func TopSpan() Span { return Span{Top: true} }

// NewSpan returns the span [lo, hi] over the given value space.
func NewSpan(space any, lo, hi int) Span {
	if space == nil {
		return TopSpan()
	}
	if hi < lo {
		hi = lo
	}
	return Span{Space: space, Lo: lo, Hi: hi}
}

// Covers reports whether a value located at (space, start, end) can be an
// output under this span bound. ⊤ and space mismatches cover everything
// (no information never rejects).
func (s Span) Covers(space any, start, end int) bool {
	if s.Top || s.Space != space {
		return true
	}
	return s.Lo <= start && end <= s.Hi
}

// Join returns the least span containing both operands; spans over
// different spaces join to ⊤.
func (s Span) Join(o Span) Span {
	if s.Top || o.Top || s.Space != o.Space {
		return TopSpan()
	}
	lo, hi := s.Lo, s.Hi
	if o.Lo < lo {
		lo = o.Lo
	}
	if o.Hi > hi {
		hi = o.Hi
	}
	return Span{Space: s.Space, Lo: lo, Hi: hi}
}

func (s Span) String() string {
	if s.Top {
		return "⊤"
	}
	return fmt.Sprintf("[%d,%d)", s.Lo, s.Hi)
}

// Seq is the abstraction of one sequence program run on one input state.
type Seq struct {
	// Infeasible means concrete execution provably fails or provably cannot
	// satisfy any example (⊥).
	Infeasible bool
	// Count bounds how many elements the program can produce.
	Count Interval
	// Span bounds where produced values can lie.
	Span Span
}

// TopSeq returns the ⊤ sequence abstraction (admits everything).
func TopSeq() Seq { return Seq{Count: TopInterval(), Span: TopSpan()} }

// InfeasibleSeq returns ⊥: the program provably fails on this input.
func InfeasibleSeq() Seq { return Seq{Infeasible: true} }

// Scalar is the abstraction of one scalar program run on one input state.
type Scalar struct {
	// Infeasible means concrete execution provably fails (⊥).
	Infeasible bool
	// Span bounds where the produced value can lie.
	Span Span
}

// TopScalar returns the ⊤ scalar abstraction (admits everything).
func TopScalar() Scalar { return Scalar{Span: TopSpan()} }

// InfeasibleScalar returns ⊥: the program provably fails on this input.
func InfeasibleScalar() Scalar { return Scalar{Infeasible: true} }

// Key identifies one refinable abstract fact: the exact match count of a
// token-pair (or other fingerprinted matcher) over the input byte range
// [Lo, Hi).
type Key struct {
	Lo, Hi int
	Fp     uint64
}

// storeCap is the widening bound of the refinement store: beyond this many
// exact facts, new refinements are dropped and the abstraction stays at its
// coarse bounds. The cap keeps pathological sessions (many documents, many
// distinct ranges) from accumulating unbounded state.
const storeCap = 4096

// Ctx is the mutable state of one pruning pass: the refinement store of
// exact counts learned from spurious survivors, plus the pruned/refinement
// counters the engine publishes. It is safe for concurrent use — the union
// learners fan candidates out across goroutines.
type Ctx struct {
	mu    sync.Mutex
	exact map[Key]int

	pruned      atomic.Int64
	refinements atomic.Int64
	replays     atomic.Int64
}

// NewCtx returns an empty refinement context.
func NewCtx() *Ctx {
	return &Ctx{exact: make(map[Key]int)}
}

// Exact returns the refined exact count recorded for the key, if any.
func (c *Ctx) Exact(k Key) (int, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.exact[k]
	return n, ok
}

// Refine records the exact concrete count for the key, tightening the
// interval future abstract evaluations will use. Past the widening cap the
// fact is dropped (the abstraction stays coarse; soundness is unaffected).
func (c *Ctx) Refine(k Key, n int) {
	if c == nil || n < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.exact[k]; !ok && len(c.exact) >= storeCap {
		return
	}
	c.exact[k] = n
}

// CountPruned records one candidate rejected by the abstract check.
func (c *Ctx) CountPruned() {
	if c != nil {
		c.pruned.Add(1)
	}
}

// Pruned returns how many candidates the abstract check rejected.
func (c *Ctx) Pruned() int64 {
	if c == nil {
		return 0
	}
	return c.pruned.Load()
}

// CountRefinement records one counterexample-driven refinement pass (a
// spurious survivor whose intervals were tightened).
func (c *Ctx) CountRefinement() {
	if c != nil {
		c.refinements.Add(1)
	}
}

// Refinements returns how many refinement passes ran.
func (c *Ctx) Refinements() int64 {
	if c == nil {
		return 0
	}
	return c.refinements.Load()
}

// CountReplay records one sub-learn replayed from the context instead of
// re-explored: a learner recognized an example fingerprint it had already
// solved under this context and returned the recorded result.
func (c *Ctx) CountReplay() {
	if c != nil {
		c.replays.Add(1)
	}
}

// Replays returns how many sub-learns were replayed.
func (c *Ctx) Replays() int64 {
	if c == nil {
		return 0
	}
	return c.replays.Load()
}

// StoreSize returns the number of exact facts currently held (observability
// and tests; the widening cap bounds it).
func (c *Ctx) StoreSize() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.exact)
}
