package bench_test

import (
	"testing"

	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
	"flashextract/internal/engine"
	"flashextract/internal/region"
)

// fieldPrograms synthesizes every field of a task ⊥-relative from two
// golden examples with the given validation worker count and returns the
// learned program text per color.
func fieldPrograms(t *testing.T, task *bench.Task, workers int) map[string]string {
	t.Helper()
	prev := engine.ValidationWorkers
	engine.ValidationWorkers = workers
	defer func() { engine.ValidationWorkers = prev }()

	out := map[string]string{}
	for _, fi := range task.Schema.Fields() {
		golden := task.Golden[fi.Color()]
		if len(golden) == 0 {
			continue
		}
		pos := golden
		if len(pos) > 2 {
			pos = pos[:2]
		}
		fp, err := engine.SynthesizeFieldProgram(
			task.Doc, task.Schema, engine.Highlighting{}, fi,
			append([]region.Region(nil), pos...), nil, map[string]bool{})
		if err != nil {
			t.Fatalf("workers=%d field %s: %v", workers, fi.Color(), err)
		}
		out[fi.Color()] = fieldProgramString(fp)
	}
	return out
}

func fieldProgramString(fp *engine.FieldProgram) string {
	if fp.Seq != nil {
		return fp.Seq.String()
	}
	return fp.Reg.String()
}

// TestDifferentialParallelValidation is the differential harness for the
// parallel candidate-validation scan: for every corpus document (plus the
// hadoop-xl stress document), synthesis with the parallel firstPassing
// pool must return bit-identical programs to a forced-serial reference
// run. Any divergence means parallel validation changed candidate ranking.
func TestDifferentialParallelValidation(t *testing.T) {
	tasks := corpus.All()
	if xl := corpus.ByName("hadoop-xl"); xl != nil {
		tasks = append(tasks, xl)
	} else {
		t.Error("hadoop-xl stress document missing from corpus")
	}
	if testing.Short() {
		// Keep a cross-domain slice plus the stress document in -short runs.
		short := tasks[:0:0]
		for i, task := range tasks {
			if i%5 == 0 || task.Name == "hadoop-xl" {
				short = append(short, task)
			}
		}
		tasks = short
	}
	for _, task := range tasks {
		t.Run(task.Name, func(t *testing.T) {
			serial := fieldPrograms(t, task, 1)
			parallel := fieldPrograms(t, task, 0)
			if len(serial) != len(parallel) {
				t.Fatalf("serial learned %d fields, parallel %d", len(serial), len(parallel))
			}
			for color, want := range serial {
				if got := parallel[color]; got != want {
					t.Errorf("field %s:\n  serial:   %s\n  parallel: %s", color, want, got)
				}
			}
		})
	}
}
