package bench

import (
	"fmt"

	"flashextract/internal/engine"
)

// LearnSchemaProgram learns a complete schema extraction program for a
// task from its golden annotations and returns the serialized artifact —
// the "learn once, then batch over the collection" half of the §2
// workflow. Each field receives up to maxExamples golden regions as
// positive instances (0 means all) before its program is learned and
// committed in schema order.
func LearnSchemaProgram(t *Task, maxExamples int) ([]byte, error) {
	s := engine.NewSession(t.Doc, t.Schema)
	for _, fi := range t.Schema.Fields() {
		golden := t.Golden[fi.Color()]
		if maxExamples > 0 && len(golden) > maxExamples {
			golden = golden[:maxExamples]
		}
		for _, r := range golden {
			if err := s.AddPositive(fi.Color(), r); err != nil {
				return nil, fmt.Errorf("bench: %s: example for %s: %w", t.Name, fi.Color(), err)
			}
		}
		if _, _, err := s.Learn(fi.Color()); err != nil {
			return nil, fmt.Errorf("bench: %s: learning %s: %w", t.Name, fi.Color(), err)
		}
		if err := s.Commit(fi.Color()); err != nil {
			return nil, fmt.Errorf("bench: %s: committing %s: %w", t.Name, fi.Color(), err)
		}
	}
	q, err := s.Program()
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", t.Name, err)
	}
	return engine.SaveSchemaProgram(q, t.Doc.Language())
}
