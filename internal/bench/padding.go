package bench

import (
	"fmt"
	"strings"
)

// PaddedDoc is one synthetic corpus document: web-scale batch benchmarks
// mix these in with the real corpus tasks to measure the run-path
// prefilter (padding that matches nothing) and the content-addressed
// store (duplicated blobs).
type PaddedDoc struct {
	// Name labels the document in batch records.
	Name string
	// Content is the raw document body (text, HTML, or CSV).
	Content string
}

// paddingVocab is the word pool padding documents draw from: lowercase
// alphabetic words only, so padding avoids the digits, punctuation, and
// structural literals the corpus extraction programs key on.
var paddingVocab = []string{
	"lorem", "ipsum", "dolor", "amet", "consectetur", "adipiscing", "elit",
	"vivamus", "fermentum", "aliquet", "sagittis", "tristique", "porta",
	"quisque", "rhoncus", "sodales", "vestibulum", "gravida", "interdum",
	"maecenas", "volutpat", "euismod", "pulvinar", "placerat", "suscipit",
}

// prng is a splitmix64 stream: deterministic for a seed across platforms,
// so padded corpora are reproducible in benchmarks and CI.
type prng struct{ state uint64 }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

func (p *prng) word() string { return paddingVocab[p.intn(len(paddingVocab))] }

// PaddingDocs generates n deterministic synthetic documents of a domain
// ("text", "web", or "sheet") that the shipped corpus programs extract
// nothing from: lowercase prose with no digits or structural punctuation,
// HTML with only html/body/p tags and no attributes, and blank CSV grids.
// They are parseable — the prefilter must reject them by analysis, not by
// parse failure.
func PaddingDocs(domain string, n int, seed uint64) []PaddedDoc {
	docs := make([]PaddedDoc, 0, n)
	for i := 0; i < n; i++ {
		r := &prng{state: seed + uint64(i)*0x9e3779b97f4a7c15}
		var content string
		switch domain {
		case "web":
			content = paddingHTML(r)
		case "sheet":
			content = paddingCSV(r)
		default:
			content = paddingText(r)
		}
		docs = append(docs, PaddedDoc{
			Name:    fmt.Sprintf("pad-%s-%04d", domain, i),
			Content: content,
		})
	}
	return docs
}

// DuplicateDocs returns copies of a document under distinct names, for
// measuring content-addressed dedup: every copy hashes to the same digest.
func DuplicateDocs(name, content string, copies int) []PaddedDoc {
	docs := make([]PaddedDoc, 0, copies)
	for i := 0; i < copies; i++ {
		docs = append(docs, PaddedDoc{
			Name:    fmt.Sprintf("%s-dup-%04d", name, i),
			Content: content,
		})
	}
	return docs
}

// paddingText emits ~100 lines of lowercase prose.
func paddingText(r *prng) string {
	var b strings.Builder
	lines := 96 + r.intn(32)
	for i := 0; i < lines; i++ {
		words := 5 + r.intn(6)
		for w := 0; w < words; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(r.word())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// paddingHTML emits a paragraph-only page: no attributes, no tags beyond
// html/body/p, so any XPath step or attribute literal of a real program is
// absent from the source. Pages are several times the size of the real
// corpus documents — the web-scale shape where most bytes belong to
// pages the program matches nothing in.
func paddingHTML(r *prng) string {
	var b strings.Builder
	b.WriteString("<html><body>")
	paras := 48 + r.intn(32)
	for i := 0; i < paras; i++ {
		b.WriteString("<p>")
		words := 8 + r.intn(8)
		for w := 0; w < words; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(r.word())
		}
		b.WriteString("</p>")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// paddingCSV emits a blank grid — empty and whitespace-only cells of
// varying dimensions. Sheet programs select cells by content class
// (numeric, alphabetic, non-empty), and any inked cell conservatively
// satisfies some class, so the blank sheet is the padding a byte-level
// admission test can reject while staying sound: it contains no digit, no
// letter, and no non-whitespace cell at all.
func paddingCSV(r *prng) string {
	var b strings.Builder
	rows := 96 + r.intn(48)
	cols := 4 + r.intn(5)
	for i := 0; i < rows; i++ {
		for c := 0; c < cols; c++ {
			if c > 0 {
				b.WriteByte(',')
			}
			if r.intn(4) == 0 {
				b.WriteString(strings.Repeat(" ", 1+r.intn(3)))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
