package bench_test

import (
	"testing"
	"time"

	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/region"
)

// corpusTasks returns the differential task set: the full corpus plus the
// hadoop-xl stress document, sliced to a cross-domain sample in -short
// runs.
func corpusTasks(t *testing.T) []*bench.Task {
	t.Helper()
	tasks := corpus.All()
	if xl := corpus.ByName("hadoop-xl"); xl != nil {
		tasks = append(tasks, xl)
	} else {
		t.Error("hadoop-xl stress document missing from corpus")
	}
	if testing.Short() {
		short := tasks[:0:0]
		for i, task := range tasks {
			if i%5 == 0 || task.Name == "hadoop-xl" {
				short = append(short, task)
			}
		}
		tasks = short
	}
	return tasks
}

// TestDifferentialIncrementalForcedK is the differential harness for
// incremental candidate reuse in the monotone-refinement regime: golden
// regions are added one at a time as positives and the session re-learns
// after each. Every step must satisfy the incremental contract — a step
// that fell back to cold synthesis must infer highlighting identical to
// the from-scratch session's same step (same spec, same deterministic
// synthesis), and a step served from retained state must keep the
// highlighting of the previous step unchanged (the new example confirmed
// the program; see internal/engine/incremental.go). The regime is where
// hits actually happen, so the run must also record reuse — a zero hit
// count would mean the harness is vacuously comparing two cold paths.
func TestDifferentialIncrementalForcedK(t *testing.T) {
	res := bench.MeasureInteractive(corpusTasks(t), 3)
	for _, tr := range res.Tasks {
		if tr.Divergences != 0 || tr.StabilityViolations != 0 {
			t.Errorf("task %s: %d fallback-step divergences from cold, %d hit-step stability violations",
				tr.Task, tr.Divergences, tr.StabilityViolations)
			for _, f := range tr.Fields {
				if f.Skipped != "" {
					t.Logf("task %s field %s skipped: %s", tr.Task, f.Color, f.Skipped)
				}
			}
		}
	}
	if res.Hits == 0 {
		t.Error("no incremental hits across the corpus; the differential is vacuous")
	}
	for _, tr := range res.Tasks {
		if tr.Task == "hadoop-xl" && tr.Hits == 0 {
			t.Error("hadoop-xl recorded no incremental hits")
		}
	}
}

// TestDifferentialIncrementalTopDown replays the mismatch-driven top-down
// workflow — the adversarial regime for reuse, where the simulator keeps
// adding examples that contradict the current program — with incremental
// reuse off and on. Every field must converge with the same outcome, the
// same number of iterations, and the same example counts: any drift means
// an incremental Learn returned different highlighting than a cold one and
// steered the refinement loop elsewhere.
func TestDifferentialIncrementalTopDown(t *testing.T) {
	prev := engine.DefaultIncremental
	defer func() { engine.DefaultIncremental = prev }()

	for _, task := range corpusTasks(t) {
		t.Run(task.Name, func(t *testing.T) {
			engine.DefaultIncremental = false
			cold := bench.RunTopDown(task)
			engine.DefaultIncremental = true
			inc := bench.RunTopDown(task)
			if len(cold.Fields) != len(inc.Fields) {
				t.Fatalf("cold ran %d fields, incremental %d", len(cold.Fields), len(inc.Fields))
			}
			for i, cf := range cold.Fields {
				nf := inc.Fields[i]
				if cf.Succeeded != nf.Succeeded || cf.FailReason != nf.FailReason ||
					cf.Iterations != nf.Iterations || cf.Positives != nf.Positives ||
					cf.Negatives != nf.Negatives {
					t.Errorf("field %s diverged:\n  cold:        %+v\n  incremental: %+v",
						cf.Color, cf, nf)
				}
			}
		})
	}
}

// TestDifferentialIncrementalUnderBudget pins the budget interaction on a
// real corpus document: with a candidate cap installed, an incremental
// session must behave exactly like a cold one on every forced-k step —
// same outcome, same program, same highlighting, same exhaustion flag —
// and must never record a hit, because reuse skips the learner's candidate
// accounting and would otherwise make budget trips depend on cache state.
func TestDifferentialIncrementalUnderBudget(t *testing.T) {
	task := corpus.All()[0]
	for _, budget := range []core.SynthBudget{
		{MaxCandidates: 1},
		{MaxCandidates: 1000000},
	} {
		cold := engine.NewSession(task.Doc, task.Schema)
		cold.SetIncremental(false)
		inc := engine.NewSession(task.Doc, task.Schema)
		inc.SetIncremental(true)
		cold.SetBudget(budget)
		inc.SetBudget(budget)
		for _, fi := range task.Schema.Fields() {
			color := fi.Color()
			golden := append([]region.Region(nil), task.Golden[color]...)
			region.Sort(golden)
			kMax := 3
			if kMax > len(golden) {
				kMax = len(golden)
			}
			for k := 1; k <= kMax; k++ {
				if err := cold.AddPositive(color, golden[k-1]); err != nil {
					t.Fatalf("cap=%d field %s k=%d: %v", budget.MaxCandidates, color, k, err)
				}
				if err := inc.AddPositive(color, golden[k-1]); err != nil {
					t.Fatalf("cap=%d field %s k=%d: %v", budget.MaxCandidates, color, k, err)
				}
				cfp, cout, cerr := cold.Learn(color)
				ifp, iout, ierr := inc.Learn(color)
				if (cerr == nil) != (ierr == nil) || (cerr != nil && cerr.Error() != ierr.Error()) {
					t.Fatalf("cap=%d field %s k=%d: cold err %v, incremental err %v",
						budget.MaxCandidates, color, k, cerr, ierr)
				}
				if cerr != nil {
					break
				}
				if got, want := fieldProgramString(ifp), fieldProgramString(cfp); got != want {
					t.Errorf("cap=%d field %s k=%d program:\n  cold:        %s\n  incremental: %s",
						budget.MaxCandidates, color, k, want, got)
				}
				if len(cout) != len(iout) {
					t.Errorf("cap=%d field %s k=%d: cold inferred %d regions, incremental %d",
						budget.MaxCandidates, color, k, len(cout), len(iout))
				}
				cp, ip := cold.LastPartial(color), inc.LastPartial(color)
				if (cp != nil) != (ip != nil) || (cp != nil && cp.Exhausted != ip.Exhausted) {
					t.Errorf("cap=%d field %s k=%d: partial-result mismatch (cold %+v, incremental %+v)",
						budget.MaxCandidates, color, k, cp, ip)
				}
			}
		}
		if hits := inc.Stats().IncrementalHits; hits != 0 {
			t.Errorf("cap=%d: capped incremental session recorded %d hits; capped calls must go cold",
				budget.MaxCandidates, hits)
		}
	}
}

// TestInteractiveSpeedupOnStressDocument is the acceptance gate of the
// interactive-latency benchmark: on the hadoop-xl stress document the
// median time-to-learn of the k-th example (k≥2) must improve by at least
// 2× with incremental reuse, with actual hits recorded. It mirrors what
// `make bench-interactive` publishes to BENCH_interactive.json.
func TestInteractiveSpeedupOnStressDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement is skipped in -short runs")
	}
	xl := corpus.ByName("hadoop-xl")
	if xl == nil {
		t.Fatal("hadoop-xl stress document missing from corpus")
	}
	res := bench.MeasureInteractive([]*bench.Task{xl}, 3)
	if res.Divergences != 0 || res.StabilityViolations != 0 {
		t.Fatalf("hadoop-xl: %d fallback-step divergences, %d stability violations",
			res.Divergences, res.StabilityViolations)
	}
	if res.Hits == 0 {
		t.Fatal("no incremental hits on hadoop-xl")
	}
	if res.Incremental.Count == 0 {
		t.Fatal("no k≥2 samples collected on hadoop-xl")
	}
	if res.SpeedupP50 < 2 {
		t.Errorf("k≥2 p50 speedup %.2fx < 2x (cold p50 %v, incremental p50 %v)",
			res.SpeedupP50, time.Duration(res.Cold.P50), time.Duration(res.Incremental.P50))
	}
}
