package bench

import (
	"fmt"
	"time"

	"flashextract/internal/engine"
	"flashextract/internal/region"
)

// RunTopDown simulates the recommended top-down session workflow of §3:
// fields are learned in top-down topological order, each relative to its
// nearest materialized ancestor, and committed once the inferred
// highlighting matches the golden annotation. The paper argues this
// ordering offers "a greater chance of success" and fewer examples than
// the hardest (⊥-relative) scenario measured by Run; comparing the two is
// the ancestor-relative ablation in EXPERIMENTS.md.
func RunTopDown(t *Task) TaskResult {
	tr := TaskResult{Task: t}
	s := engine.NewSession(t.Doc, t.Schema)
	failed := false
	for _, fi := range t.Schema.Fields() {
		fr := FieldResult{Color: fi.Color()}
		if failed {
			fr.FailReason = "skipped: an ancestor field failed"
			tr.Fields = append(tr.Fields, fr)
			continue
		}
		fr = simulateSessionField(s, fi.Color(), t.Golden[fi.Color()])
		fr.Color = fi.Color()
		if fr.Succeeded {
			if err := s.Commit(fi.Color()); err != nil {
				fr.Succeeded = false
				fr.FailReason = fmt.Sprintf("commit failed: %v", err)
			}
		}
		if !fr.Succeeded {
			failed = true
		}
		tr.Fields = append(tr.Fields, fr)
	}
	return tr
}

// simulateSessionField is the session-based analogue of SimulateField: it
// feeds examples through the interactive API so that learning happens
// relative to whatever ancestor has been materialized.
func simulateSessionField(s *engine.Session, color string, golden []region.Region) FieldResult {
	fr := FieldResult{}
	if len(golden) == 0 {
		fr.FailReason = "no golden instances"
		return fr
	}
	golden = append([]region.Region(nil), golden...)
	region.Sort(golden)
	if err := s.AddPositive(color, golden[0]); err != nil {
		fr.FailReason = err.Error()
		return fr
	}
	positives := []region.Region{golden[0]}
	negatives := 0
	for iter := 1; iter <= MaxIterations; iter++ {
		fr.Iterations = iter
		fr.Positives = len(positives)
		fr.Negatives = negatives
		start := time.Now()
		_, out, err := s.Learn(color)
		fr.LastSynth = time.Since(start)
		if err != nil {
			fr.FailReason = err.Error()
			return fr
		}
		missing, spurious, prefix := firstMismatch(golden, out)
		if missing == nil && spurious == nil {
			fr.Succeeded = true
			return fr
		}
		add := func(r region.Region, positive bool) error {
			if positive {
				positives = addRegion(positives, r)
				return s.AddPositive(color, r)
			}
			negatives++
			return s.AddNegative(color, r)
		}
		for _, r := range prefix {
			if err := add(r, true); err != nil {
				fr.FailReason = err.Error()
				return fr
			}
		}
		var stepErr error
		switch {
		case missing != nil:
			stepErr = add(missing, true)
		default:
			if g := overlappingGolden(golden, positives, spurious); g != nil {
				stepErr = add(g, true)
			} else {
				stepErr = add(spurious, false)
			}
		}
		if stepErr != nil {
			fr.FailReason = stepErr.Error()
			return fr
		}
	}
	fr.FailReason = fmt.Sprintf("no convergence within %d iterations", MaxIterations)
	return fr
}

// RunAllTopDown simulates the top-down workflow over a task set.
func RunAllTopDown(tasks []*Task) []TaskResult {
	out := make([]TaskResult, len(tasks))
	for i, t := range tasks {
		out[i] = RunTopDown(t)
	}
	return out
}
