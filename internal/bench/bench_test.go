package bench

import (
	"strings"
	"testing"
	"time"

	"flashextract/internal/region"
	"flashextract/internal/schema"
	"flashextract/internal/textlang"
)

// simpleTask builds a small text task: names before colons.
func simpleTask() *Task {
	text := "alpha: 1\nbeta: 22\ngamma: 333\ndelta: 4\n"
	doc := textlang.NewDocument(text)
	m := schema.MustParse(`Struct(Names: Seq([n] String), Values: Seq([v] Int))`)
	golden := map[string][]region.Region{}
	for _, name := range []string{"alpha", "beta", "gamma", "delta"} {
		r, _ := doc.FindRegion(name, 0)
		golden["n"] = append(golden["n"], r)
	}
	for _, val := range []string{" 1", " 22", " 333", " 4"} {
		r, _ := doc.FindRegion(val, 0)
		golden["v"] = append(golden["v"], doc.Region(r.Start+1, r.End))
	}
	return &Task{Name: "simple", Domain: "text", Doc: doc, Schema: m, Golden: golden}
}

func TestSimulateFieldConverges(t *testing.T) {
	task := simpleTask()
	fr := SimulateField(task.Doc, task.Golden["n"])
	if !fr.Succeeded {
		t.Fatalf("simulation failed: %s", fr.FailReason)
	}
	if fr.Positives < 1 || fr.Iterations < 1 {
		t.Fatalf("degenerate result: %+v", fr)
	}
	if fr.Examples() != fr.Positives+fr.Negatives {
		t.Fatal("Examples() mismatch")
	}
}

func TestSimulateFieldNoGolden(t *testing.T) {
	task := simpleTask()
	fr := SimulateField(task.Doc, nil)
	if fr.Succeeded || fr.FailReason == "" {
		t.Fatalf("empty golden should fail: %+v", fr)
	}
}

func TestSimulateFieldImpossible(t *testing.T) {
	// A golden set that no Ltext program can produce: two overlapping
	// regions (an instance nested in another of the same field).
	doc := textlang.NewDocument("abcdef\nghijkl\n")
	golden := []region.Region{doc.Region(0, 6), doc.Region(2, 4)}
	old := MaxIterations
	MaxIterations = 4
	defer func() { MaxIterations = old }()
	fr := SimulateField(doc, golden)
	if fr.Succeeded {
		t.Fatal("impossible task reported success")
	}
}

func TestRunAndSummarize(t *testing.T) {
	task := simpleTask()
	results := RunAll([]*Task{task})
	if len(results) != 1 {
		t.Fatal("RunAll lost a task")
	}
	tr := results[0]
	if !tr.AllSucceeded() {
		t.Fatalf("fields failed: %+v", tr.Fields)
	}
	if len(tr.Fields) != 2 {
		t.Fatalf("got %d fields, want 2", len(tr.Fields))
	}
	pos, neg := tr.AvgExamples()
	if pos < 1 {
		t.Fatalf("avg positives = %f", pos)
	}
	s := Summarize(results)
	if s.Documents != 1 || s.Fields != 2 || s.Failures != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.AvgExamples != s.AvgPositives+s.AvgNegatives {
		t.Fatal("summary example totals inconsistent")
	}
	if s.AvgExamples != (pos+neg)*1 { // single doc: same averages
		t.Fatalf("summary avg %f vs task avg %f", s.AvgExamples, pos+neg)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Documents != 0 || s.AvgExamples != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestAvgHelpersEmpty(t *testing.T) {
	tr := TaskResult{}
	if p, n := tr.AvgExamples(); p != 0 || n != 0 {
		t.Fatal("empty AvgExamples not zero")
	}
	if tr.AvgLastSynth() != 0 {
		t.Fatal("empty AvgLastSynth not zero")
	}
	if !tr.AllSucceeded() {
		t.Fatal("vacuous AllSucceeded should be true")
	}
}

func TestFirstMismatch(t *testing.T) {
	doc := textlang.NewDocument("aaa bbb ccc ddd")
	a := doc.Region(0, 3)
	b := doc.Region(4, 7)
	c := doc.Region(8, 11)
	mk := func(rs ...region.Region) []region.Region { return rs }

	// identical
	if m, s, _ := firstMismatch(mk(a, b), mk(a, b)); m != nil || s != nil {
		t.Fatal("identical sequences should match")
	}
	// missing golden
	m, s, prefix := firstMismatch(mk(a, b, c), mk(a, b))
	if m != region.Region(c) || s != nil || len(prefix) != 2 {
		t.Fatalf("missing: %v %v %v", m, s, prefix)
	}
	// spurious output
	m, s, _ = firstMismatch(mk(a, c), mk(a, b, c))
	if m != nil || s != region.Region(b) {
		t.Fatalf("spurious: %v %v", m, s)
	}
	// first difference wins: golden has b, output has c first
	m, s, _ = firstMismatch(mk(b), mk(c))
	if m != region.Region(b) || s != nil {
		t.Fatalf("order: %v %v", m, s)
	}
}

func TestOverlappingGolden(t *testing.T) {
	doc := textlang.NewDocument("abcdefgh")
	g := doc.Region(2, 6)
	golden := []region.Region{g}
	spur := doc.Region(0, 4)
	if got := overlappingGolden(golden, nil, spur); got != region.Region(g) {
		t.Fatalf("got %v", got)
	}
	// already a positive → nil
	if got := overlappingGolden(golden, []region.Region{g}, spur); got != nil {
		t.Fatalf("got %v, want nil", got)
	}
	// disjoint → nil
	if got := overlappingGolden(golden, nil, doc.Region(7, 8)); got != nil {
		t.Fatalf("got %v, want nil", got)
	}
}

func TestAddRegionDedupes(t *testing.T) {
	doc := textlang.NewDocument("abcd")
	a := doc.Region(0, 2)
	b := doc.Region(2, 4)
	rs := addRegion(nil, b)
	rs = addRegion(rs, a)
	rs = addRegion(rs, a)
	if len(rs) != 2 || rs[0] != region.Region(a) {
		t.Fatalf("addRegion = %v", rs)
	}
}

// ---- report rendering ----

func fakeResults() []TaskResult {
	task := simpleTask()
	return []TaskResult{{
		Task: task,
		Fields: []FieldResult{
			{Color: "n", Positives: 2, Negatives: 1, Succeeded: true, LastSynth: 20 * time.Millisecond},
			{Color: "v", Positives: 1, Negatives: 0, Succeeded: false, FailReason: "x", LastSynth: 10 * time.Millisecond},
		},
	}}
}

func TestFig10Rows(t *testing.T) {
	rows := Fig10(fakeResults())
	if len(rows) != 1 {
		t.Fatal("row count")
	}
	r := rows[0]
	if r.Doc != "simple" || r.AvgPos != 1.5 || r.AvgNeg != 0.5 || r.Failures != 1 {
		t.Fatalf("row = %+v", r)
	}
	var b strings.Builder
	WriteFig10(&b, rows)
	out := b.String()
	if !strings.Contains(out, "simple") || !strings.Contains(out, "FAILED") {
		t.Fatalf("Fig10 output:\n%s", out)
	}
}

func TestFig11Rows(t *testing.T) {
	rows := Fig11(fakeResults())
	if len(rows) != 1 || rows[0].AvgSeconds != 0.015 {
		t.Fatalf("rows = %+v", rows)
	}
	var b strings.Builder
	WriteFig11(&b, rows)
	if !strings.Contains(b.String(), "0.015") {
		t.Fatalf("Fig11 output:\n%s", b.String())
	}
}

func TestWriteSummary(t *testing.T) {
	var b strings.Builder
	WriteSummary(&b, Summarize(fakeResults()))
	out := b.String()
	for _, want := range []string{"documents:", "fields:", "2.00", "paper reference"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunTopDownSimple(t *testing.T) {
	task := simpleTask()
	res := RunTopDown(task)
	if !res.AllSucceeded() {
		t.Fatalf("top-down failed: %+v", res.Fields)
	}
	if len(res.Fields) != 2 {
		t.Fatalf("fields = %d", len(res.Fields))
	}
}

func TestRunTopDownSkipsAfterAncestorFailure(t *testing.T) {
	task := simpleTask()
	// Remove the golden instances of the first field: it cannot be learned,
	// and the second field is reported as skipped.
	task.Golden["n"] = nil
	res := RunTopDown(task)
	if res.AllSucceeded() {
		t.Fatal("expected failure")
	}
	if res.Fields[0].Succeeded {
		t.Fatal("first field should fail")
	}
	if res.Fields[1].Succeeded || res.Fields[1].FailReason == "" {
		t.Fatalf("second field should be skipped: %+v", res.Fields[1])
	}
}

func TestRunTransferSimple(t *testing.T) {
	train := simpleTask()
	// A same-layout test document with different content.
	text := "zeta: 7\nyak: 88\nxis: 999\n"
	doc := textlang.NewDocument(text)
	golden := map[string][]region.Region{}
	for _, name := range []string{"zeta", "yak", "xis"} {
		r, _ := doc.FindRegion(name, 0)
		golden["n"] = append(golden["n"], r)
	}
	for _, val := range []string{" 7", " 88", " 999"} {
		r, _ := doc.FindRegion(val, 0)
		golden["v"] = append(golden["v"], doc.Region(r.Start+1, r.End))
	}
	test := &Task{Name: "simple-test", Domain: "text", Doc: doc, Schema: train.Schema, Golden: golden}
	results := RunTransfer(train, test)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, tr := range results {
		if !tr.Learned {
			t.Fatalf("field %s did not learn: %s", tr.Color, tr.Detail)
		}
		if !tr.Transferred {
			t.Fatalf("field %s did not transfer: %s", tr.Color, tr.Detail)
		}
	}
}

func TestRunTransferTrainingFailure(t *testing.T) {
	train := simpleTask()
	train.Golden["n"] = nil
	results := RunTransfer(train, train)
	if results[0].Learned || results[0].Detail == "" {
		t.Fatalf("expected training failure: %+v", results[0])
	}
}
