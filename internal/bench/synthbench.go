package bench

import (
	"context"
	"fmt"
	"time"

	"flashextract/internal/engine"
	"flashextract/internal/metrics"
	"flashextract/internal/region"
)

// SynthTiming is one end-to-end field-synthesis measurement: the wall time
// of the Algorithm 2 driver (learning plus the execute-and-check candidate
// validation loop) over every field of a task, ⊥-relative, from two golden
// examples per field. This is the hot loop behind every interactive
// refinement and the quantity tracked in BENCH_synth.json.
type SynthTiming struct {
	Name     string `json:"name"`
	Domain   string `json:"domain"`
	DocBytes int    `json:"doc_bytes"`
	Fields   int    `json:"fields"`
	Reps     int    `json:"reps"`
	BestNs   int64  `json:"best_ns"`
	MeanNs   int64  `json:"mean_ns"`

	// Pruning differential (schema v2): candidate counts of one synthesis
	// pass with abstraction-guided pruning on versus off. The ranked output
	// is bit-identical either way (see DESIGN.md); only the concrete work
	// changes. CandidatesPruned counts abstract rejections; PruneRatio is
	// 1 - ExploredPruned/ExploredUnpruned — the fraction of candidate
	// executions the abstraction layer avoided, whether by rejecting a
	// candidate outright or by replaying an already-solved sub-learn.
	ExploredPruned   int64   `json:"explored_pruned"`
	CandidatesPruned int64   `json:"candidates_pruned"`
	ExploredUnpruned int64   `json:"explored_unpruned"`
	PruneRatio       float64 `json:"prune_ratio"`
}

// MeasureSynth times reps runs of end-to-end field synthesis on a task and
// reports the best and mean wall time.
func MeasureSynth(task *Task, reps int) (SynthTiming, error) {
	if reps < 1 {
		reps = 1
	}
	st := SynthTiming{
		Name:     task.Name,
		Domain:   task.Domain,
		DocBytes: len(task.Doc.WholeRegion().Value()),
		Reps:     reps,
	}
	var total time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		fields := 0
		for _, fi := range task.Schema.Fields() {
			golden := task.Golden[fi.Color()]
			if len(golden) == 0 {
				continue
			}
			pos := golden
			if len(pos) > 2 {
				pos = pos[:2]
			}
			fp, err := engine.SynthesizeFieldProgram(
				task.Doc, task.Schema, engine.Highlighting{}, fi,
				append([]region.Region(nil), pos...), nil, map[string]bool{})
			if err != nil {
				return st, fmt.Errorf("field %s: %w", fi.Color(), err)
			}
			if fp == nil {
				return st, fmt.Errorf("field %s: no program", fi.Color())
			}
			fields++
		}
		elapsed := time.Since(start)
		total += elapsed
		st.Fields = fields
		if st.BestNs == 0 || elapsed.Nanoseconds() < st.BestNs {
			st.BestNs = elapsed.Nanoseconds()
		}
	}
	st.MeanNs = total.Nanoseconds() / int64(reps)
	var err error
	if st.ExploredPruned, st.CandidatesPruned, err = measureExplored(task, true); err != nil {
		return st, err
	}
	if st.ExploredUnpruned, _, err = measureExplored(task, false); err != nil {
		return st, err
	}
	if st.ExploredUnpruned > 0 {
		st.PruneRatio = 1 - float64(st.ExploredPruned)/float64(st.ExploredUnpruned)
	}
	return st, nil
}

// measureExplored runs one ⊥-relative synthesis pass over every field of
// the task with abstraction-guided pruning forced on or off, and reports
// the candidates-explored and candidates-pruned counter totals.
func measureExplored(task *Task, pruning bool) (explored, pruned int64, err error) {
	prev := engine.DefaultPruning
	engine.DefaultPruning = pruning
	defer func() { engine.DefaultPruning = prev }()
	reg := metrics.NewRegistry()
	ctx := metrics.Into(context.Background(), reg)
	for _, fi := range task.Schema.Fields() {
		golden := task.Golden[fi.Color()]
		if len(golden) == 0 {
			continue
		}
		pos := golden
		if len(pos) > 2 {
			pos = pos[:2]
		}
		_, _, err := engine.SynthesizeFieldProgramCtx(
			ctx, task.Doc, task.Schema, engine.Highlighting{}, fi,
			append([]region.Region(nil), pos...), nil, map[string]bool{})
		if err != nil {
			return 0, 0, fmt.Errorf("field %s: %w", fi.Color(), err)
		}
	}
	return reg.Counter(metrics.CandidatesExplored), reg.Counter(metrics.CandidatesPruned), nil
}
