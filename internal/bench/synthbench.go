package bench

import (
	"fmt"
	"time"

	"flashextract/internal/engine"
	"flashextract/internal/region"
)

// SynthTiming is one end-to-end field-synthesis measurement: the wall time
// of the Algorithm 2 driver (learning plus the execute-and-check candidate
// validation loop) over every field of a task, ⊥-relative, from two golden
// examples per field. This is the hot loop behind every interactive
// refinement and the quantity tracked in BENCH_synth.json.
type SynthTiming struct {
	Name     string `json:"name"`
	Domain   string `json:"domain"`
	DocBytes int    `json:"doc_bytes"`
	Fields   int    `json:"fields"`
	Reps     int    `json:"reps"`
	BestNs   int64  `json:"best_ns"`
	MeanNs   int64  `json:"mean_ns"`
}

// MeasureSynth times reps runs of end-to-end field synthesis on a task and
// reports the best and mean wall time.
func MeasureSynth(task *Task, reps int) (SynthTiming, error) {
	if reps < 1 {
		reps = 1
	}
	st := SynthTiming{
		Name:     task.Name,
		Domain:   task.Domain,
		DocBytes: len(task.Doc.WholeRegion().Value()),
		Reps:     reps,
	}
	var total time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		fields := 0
		for _, fi := range task.Schema.Fields() {
			golden := task.Golden[fi.Color()]
			if len(golden) == 0 {
				continue
			}
			pos := golden
			if len(pos) > 2 {
				pos = pos[:2]
			}
			fp, err := engine.SynthesizeFieldProgram(
				task.Doc, task.Schema, engine.Highlighting{}, fi,
				append([]region.Region(nil), pos...), nil, map[string]bool{})
			if err != nil {
				return st, fmt.Errorf("field %s: %w", fi.Color(), err)
			}
			if fp == nil {
				return st, fmt.Errorf("field %s: no program", fi.Color())
			}
			fields++
		}
		elapsed := time.Since(start)
		total += elapsed
		st.Fields = fields
		if st.BestNs == 0 || elapsed.Nanoseconds() < st.BestNs {
			st.BestNs = elapsed.Nanoseconds()
		}
	}
	st.MeanNs = total.Nanoseconds() / int64(reps)
	return st, nil
}
