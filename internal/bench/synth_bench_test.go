package bench_test

import (
	"testing"

	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
	"flashextract/internal/engine"
	"flashextract/internal/region"
)

// synthesizeTaskFields runs the Algorithm 2 driver — learning plus the
// execute-and-check candidate validation loop — for every field of a task,
// ⊥-relative, from two golden examples. This is the end-to-end path behind
// every interactive refinement, and the target of the evaluation-cache and
// parallel-validation optimizations.
func synthesizeTaskFields(b *testing.B, task *bench.Task) {
	b.Helper()
	for _, fi := range task.Schema.Fields() {
		golden := task.Golden[fi.Color()]
		if len(golden) == 0 {
			continue
		}
		pos := golden
		if len(pos) > 2 {
			pos = pos[:2]
		}
		fp, err := engine.SynthesizeFieldProgram(
			task.Doc, task.Schema, engine.Highlighting{}, fi,
			append([]region.Region(nil), pos...), nil, map[string]bool{})
		if err != nil {
			b.Fatalf("field %s: %v", fi.Color(), err)
		}
		if fp == nil {
			b.Fatalf("field %s: no program", fi.Color())
		}
	}
}

// BenchmarkFieldSynthesisLargestText measures end-to-end field synthesis
// on the largest text corpus document (hadoop-xl, ~100 KB).
func BenchmarkFieldSynthesisLargestText(b *testing.B) {
	task := corpus.LargestText()
	b.SetBytes(int64(len(task.Doc.WholeRegion().Value())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		synthesizeTaskFields(b, task)
	}
}

// BenchmarkFieldSynthesisTextCorpus measures end-to-end field synthesis
// across the full 25-document text corpus.
func BenchmarkFieldSynthesisTextCorpus(b *testing.B) {
	tasks := corpus.Text()
	for i := 0; i < b.N; i++ {
		for _, task := range tasks {
			synthesizeTaskFields(b, task)
		}
	}
}

// BenchmarkFieldSynthesisWebCorpus measures end-to-end field synthesis
// across the webpage corpus.
func BenchmarkFieldSynthesisWebCorpus(b *testing.B) {
	tasks := corpus.Web()
	for i := 0; i < b.N; i++ {
		for _, task := range tasks {
			synthesizeTaskFields(b, task)
		}
	}
}

// BenchmarkSimulateLargestText replays the full §6 interaction (iterated
// synthesize → execute → refine) on the largest text document.
func BenchmarkSimulateLargestText(b *testing.B) {
	task := corpus.LargestText()
	for i := 0; i < b.N; i++ {
		tr := bench.Run(task)
		if !tr.AllSucceeded() {
			for _, f := range tr.Fields {
				if !f.Succeeded {
					b.Fatalf("field %s failed: %s", f.Color, f.FailReason)
				}
			}
		}
	}
}
