package bench

import (
	"context"
	"fmt"

	"flashextract/internal/engine"
	"flashextract/internal/region"
	"flashextract/internal/trace"
)

// TraceTask runs ⊥-relative field synthesis over every field of a task
// under a fresh tracer and returns the finished "task:<name>" root span:
// the span tree behind flashbench -trace-out and the golden-trace test.
// Each field synthesizes from (at most) two golden examples, exactly as
// MeasureSynth does, so the tree reflects the measured workload. The
// caller's context carries cancellation and the logx logger, if any.
func TraceTask(ctx context.Context, task *Task) (*trace.Span, error) {
	tr := trace.NewTracer()
	ctx, root := tr.StartRoot(ctx, "task:"+task.Name)
	root.SetString("domain", task.Domain)
	root.SetInt("doc_bytes", int64(len(task.Doc.WholeRegion().Value())))
	defer root.End()
	fields := 0
	for _, fi := range task.Schema.Fields() {
		golden := task.Golden[fi.Color()]
		if len(golden) == 0 {
			continue
		}
		pos := golden
		if len(pos) > 2 {
			pos = pos[:2]
		}
		fp, _, err := engine.SynthesizeFieldProgramCtx(
			ctx, task.Doc, task.Schema, engine.Highlighting{}, fi,
			append([]region.Region(nil), pos...), nil, map[string]bool{})
		if err != nil {
			return nil, fmt.Errorf("field %s: %w", fi.Color(), err)
		}
		if fp == nil {
			return nil, fmt.Errorf("field %s: no program", fi.Color())
		}
		fields++
	}
	root.SetInt("fields", int64(fields))
	if n := tr.Dropped(); n > 0 {
		root.SetInt("spans_dropped", n)
	}
	return root, nil
}
