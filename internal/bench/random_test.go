package bench

import (
	"fmt"
	"strings"
	"testing"

	"flashextract/internal/region"
	"flashextract/internal/textlang"
)

// This file is a randomized robustness check: documents with layouts drawn
// from a small grammar of record formats (varying delimiters, field kinds,
// and noise headers) must all converge under the simulated interaction.
// The generator is seeded deterministically so failures are reproducible.

// layoutRNG is a tiny deterministic PRNG (xorshift) so the test needs no
// global seeding and stays reproducible.
type layoutRNG struct{ s uint64 }

func (r *layoutRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *layoutRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *layoutRNG) pick(xs []string) string { return xs[r.intn(len(xs))] }

var (
	layoutPrefixes   = []string{"", "row: ", "> ", "item "}
	layoutDelims     = []string{": ", " | ", " -> ", " = ", "; "}
	layoutTerms      = []string{"", " .", " ok", " #"}
	layoutWordPool   = []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india", "juliet"}
	layoutHeaderPool = []string{"report header", "generated file", "do not edit", "records follow"}
)

// randomLayoutTask builds a two-field record document from the layout
// grammar and returns the task plus a description for failure messages.
func randomLayoutTask(seed uint64) (*Task, string) {
	rng := &layoutRNG{s: seed*2654435761 + 1}
	prefix := rng.pick(layoutPrefixes)
	delim := rng.pick(layoutDelims)
	term := rng.pick(layoutTerms)
	rows := 4 + rng.intn(4)

	var sb strings.Builder
	sb.WriteString(rng.pick(layoutHeaderPool) + "\n")
	type mark struct{ s, e int }
	var words, nums []mark
	for i := 0; i < rows; i++ {
		w := layoutWordPool[(int(seed)+i*3)%len(layoutWordPool)]
		n := fmt.Sprintf("%d.%02d", 10+rng.intn(900), rng.intn(100))
		sb.WriteString(prefix)
		ws := sb.Len()
		sb.WriteString(w)
		words = append(words, mark{ws, sb.Len()})
		sb.WriteString(delim)
		ns := sb.Len()
		sb.WriteString(n)
		nums = append(nums, mark{ns, sb.Len()})
		sb.WriteString(term)
		sb.WriteString("\n")
	}
	text := sb.String()
	doc := textlang.NewDocument(text)
	golden := map[string][]region.Region{"w": nil, "n": nil}
	for _, m := range words {
		golden["w"] = append(golden["w"], doc.Region(m.s, m.e))
	}
	for _, m := range nums {
		golden["n"] = append(golden["n"], doc.Region(m.s, m.e))
	}
	desc := fmt.Sprintf("prefix=%q delim=%q term=%q rows=%d", prefix, delim, term, rows)
	return &Task{
		Name:   fmt.Sprintf("random-%d", seed),
		Domain: "text",
		Doc:    doc,
		Golden: golden,
	}, desc
}

func TestRandomLayoutsConverge(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		task, desc := randomLayoutTask(seed)
		for _, color := range []string{"w", "n"} {
			fr := SimulateField(task.Doc, task.Golden[color])
			if !fr.Succeeded {
				t.Errorf("seed %d (%s) field %s: %s after %d iterations",
					seed, desc, color, fr.FailReason, fr.Iterations)
			} else if fr.Examples() > 6 {
				t.Logf("seed %d (%s) field %s needed %d examples", seed, desc, color, fr.Examples())
			}
		}
	}
}
