package bench_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
	"flashextract/internal/engine"
	"flashextract/internal/trace"
)

// traceHadoopXLSerial synthesizes hadoop-xl under the tracer with one
// validation worker and GOMAXPROCS(1), which serializes every union and
// validation scan — the configuration in which the span tree's structure
// is fully deterministic.
func traceHadoopXLSerial(t *testing.T) *trace.Span {
	t.Helper()
	oldProcs := runtime.GOMAXPROCS(1)
	oldWorkers := engine.ValidationWorkers
	engine.ValidationWorkers = 1
	t.Cleanup(func() {
		runtime.GOMAXPROCS(oldProcs)
		engine.ValidationWorkers = oldWorkers
	})
	task := corpus.ByName("hadoop-xl")
	if task == nil {
		t.Fatal("hadoop-xl not in corpus")
	}
	root, err := bench.TraceTask(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestTraceHadoopXLSpans asserts the acceptance-level span taxonomy: the
// hadoop-xl synthesis trace contains field-level, learner-level (Map,
// Filter, Merge, Pair), and cache spans, and its Chrome export is valid
// Perfetto-loadable trace-event JSON.
func TestTraceHadoopXLSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("hadoop-xl synthesis is seconds-long; skipped in -short")
	}
	root := traceHadoopXLSerial(t)

	names := trace.SpanNames(root)
	counts := map[string]int{}
	for _, n := range names {
		counts[n]++
	}
	has := func(name string) bool {
		for _, n := range names {
			if n == name || len(n) > len(name) && n[:len(name)+1] == name+":" {
				return true
			}
		}
		return false
	}
	for _, want := range []string{
		"task", "field", "ancestor", "learn", "validate", // driver levels
		"map", "filter_bool", "filter_int", "merge", "pair", // Fig. 6 learners
		"union", "cleanup", // framework combinators
		"cache", // cache hit/miss delta span
	} {
		if !has(want) {
			t.Errorf("trace missing %q span; have %v", want, counts)
		}
	}

	// Two seq fields → two field spans, each with exactly one cache child.
	fields := 0
	for _, n := range names {
		if len(n) > 6 && n[:6] == "field:" {
			fields++
		}
	}
	if fields != 2 {
		t.Errorf("field spans = %d, want 2", fields)
	}

	// Perfetto validity: the export is one JSON object whose traceEvents
	// are complete ("X") events with the required keys and sane values.
	out, err := trace.ChromeTrace(root)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(out) {
		t.Fatal("Chrome trace is not valid JSON")
	}
	var file struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Cat  string   `json:"cat"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out, &file); err != nil {
		t.Fatal(err)
	}
	var countSpans func(s *trace.Span) int
	countSpans = func(s *trace.Span) int {
		n := 1
		for _, c := range s.Children() {
			n += countSpans(c)
		}
		return n
	}
	if total := countSpans(root); len(file.TraceEvents) != total {
		t.Fatalf("events = %d, spans = %d", len(file.TraceEvents), total)
	}
	for i, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %d: ph = %q, want X", i, ev.Ph)
		}
		if ev.Name == "" || ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d (%q) missing required keys", i, ev.Name)
		}
		if *ev.Ts < 0 || *ev.Dur < 0 {
			t.Fatalf("event %d (%q): negative ts/dur", i, ev.Name)
		}
	}
}

// TestTraceHadoopXLGoldenStructure pins the exact serial span-tree shape
// (names and nesting only — durations and attrs carry no structure) against
// testdata/hadoop_xl_trace.golden. Regenerate with:
//
//	UPDATE_TRACE_GOLDEN=1 go test ./internal/bench/ -run GoldenStructure
func TestTraceHadoopXLGoldenStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("hadoop-xl synthesis is seconds-long; skipped in -short")
	}
	root := traceHadoopXLSerial(t)
	var buf bytes.Buffer
	if err := trace.WriteStructure(&buf, root); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "hadoop_xl_trace.golden")
	if os.Getenv("UPDATE_TRACE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with UPDATE_TRACE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace structure drifted from golden:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}
