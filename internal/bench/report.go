package bench

import (
	"fmt"
	"io"
	"strings"
)

// Fig10Row is one bar of Fig. 10: the average number of positive and
// negative instances across the fields of one document.
type Fig10Row struct {
	Doc      string
	Domain   string
	AvgPos   float64
	AvgNeg   float64
	Fields   int
	Failures int
}

// Fig10 computes the rows of Fig. 10 from task results.
func Fig10(results []TaskResult) []Fig10Row {
	out := make([]Fig10Row, 0, len(results))
	for _, tr := range results {
		row := Fig10Row{Doc: tr.Task.Name, Domain: tr.Task.Domain, Fields: len(tr.Fields)}
		row.AvgPos, row.AvgNeg = tr.AvgExamples()
		for _, f := range tr.Fields {
			if !f.Succeeded {
				row.Failures++
			}
		}
		out = append(out, row)
	}
	return out
}

// Fig11Row is one bar of Fig. 11: the average synthesis time of the last
// interaction across the fields of one document.
type Fig11Row struct {
	Doc        string
	Domain     string
	AvgSeconds float64
}

// Fig11 computes the rows of Fig. 11 from task results.
func Fig11(results []TaskResult) []Fig11Row {
	out := make([]Fig11Row, 0, len(results))
	for _, tr := range results {
		out = append(out, Fig11Row{
			Doc:        tr.Task.Name,
			Domain:     tr.Task.Domain,
			AvgSeconds: tr.AvgLastSynth().Seconds(),
		})
	}
	return out
}

// WriteFig10 renders Fig. 10 rows as an aligned table with a text bar per
// document (solid bar = positive instances, open bar = negatives), the
// shape the paper plots.
func WriteFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintf(w, "%-14s %8s %8s %8s   %s\n", "document", "avg pos", "avg neg", "total", "examples")
	for _, r := range rows {
		bar := strings.Repeat("█", int(r.AvgPos*2+0.5)) + strings.Repeat("░", int(r.AvgNeg*2+0.5))
		status := ""
		if r.Failures > 0 {
			status = fmt.Sprintf("  (%d FAILED)", r.Failures)
		}
		fmt.Fprintf(w, "%-14s %8.2f %8.2f %8.2f   %s%s\n",
			r.Doc, r.AvgPos, r.AvgNeg, r.AvgPos+r.AvgNeg, bar, status)
	}
}

// WriteFig11 renders Fig. 11 rows as an aligned table with a text bar per
// document.
func WriteFig11(w io.Writer, rows []Fig11Row) {
	fmt.Fprintf(w, "%-14s %10s   %s\n", "document", "seconds", "last-iteration synthesis time")
	for _, r := range rows {
		bar := strings.Repeat("█", int(r.AvgSeconds*200+0.5))
		fmt.Fprintf(w, "%-14s %10.3f   %s\n", r.Doc, r.AvgSeconds, bar)
	}
}

// WriteSummary renders the headline aggregate of §6.
func WriteSummary(w io.Writer, s Summary) {
	fmt.Fprintf(w, "documents:             %d\n", s.Documents)
	fmt.Fprintf(w, "fields:                %d\n", s.Fields)
	fmt.Fprintf(w, "failed fields:         %d\n", s.Failures)
	fmt.Fprintf(w, "avg examples/field:    %.2f  (%.2f positive + %.2f negative)\n",
		s.AvgExamples, s.AvgPositives, s.AvgNegatives)
	fmt.Fprintf(w, "avg synthesis time:    %.3fs per field (last iteration)\n", s.AvgLastSynth.Seconds())
	fmt.Fprintf(w, "paper reference:       2.36 examples and 0.84s per field (C#, Core i7 2.67GHz)\n")
}
