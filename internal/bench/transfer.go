package bench

import (
	"fmt"

	"flashextract/internal/region"
)

// TransferResult records whether a program learned on one document
// extracts the golden annotation of a second, similarly formatted document
// without any new examples — the §2 workflow of running a learned program
// "on other similar files".
type TransferResult struct {
	Task  string
	Color string
	// Learned reports whether the training simulation converged.
	Learned bool
	// Transferred reports whether the learned program reproduced the test
	// document's golden annotation exactly.
	Transferred bool
	// Detail describes the first divergence, if any.
	Detail string
}

// RunTransfer learns every field of train via the ⊥-relative simulation
// and replays the final programs on test.
func RunTransfer(train, test *Task) []TransferResult {
	var out []TransferResult
	for _, fi := range train.Schema.Fields() {
		tr := TransferResult{Task: train.Name, Color: fi.Color()}
		fr := SimulateField(train.Doc, train.Golden[fi.Color()])
		if !fr.Succeeded || fr.Program == nil {
			tr.Detail = "training failed: " + fr.FailReason
			out = append(out, tr)
			continue
		}
		tr.Learned = true
		got, err := fr.Program.ExtractSeq(test.Doc.WholeRegion())
		if err != nil {
			tr.Detail = fmt.Sprintf("execution on test document failed: %v", err)
			out = append(out, tr)
			continue
		}
		want := append([]region.Region(nil), test.Golden[fi.Color()]...)
		region.Sort(want)
		missing, spurious, _ := firstMismatch(want, got)
		switch {
		case missing == nil && spurious == nil:
			tr.Transferred = true
		case missing != nil:
			tr.Detail = fmt.Sprintf("missing %s (%q)", missing, clip(missing.Value()))
		default:
			tr.Detail = fmt.Sprintf("spurious %s (%q)", spurious, clip(spurious.Value()))
		}
		out = append(out, tr)
	}
	return out
}

func clip(s string) string {
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}
