package bench

import (
	"math"
	"sort"
	"time"

	"flashextract/internal/engine"
	"flashextract/internal/region"
)

// This file implements the interactive-latency benchmark behind
// `flashbench -interactive-json` (schema flashextract-interactive/v1): the
// quantity a user feels in the §3 refinement loop is the time-to-learn of
// the k-th example — how long FlashExtract takes to respond after one more
// region is highlighted. The benchmark replays a forced-k refinement
// (golden regions are added one at a time as positives, re-learning after
// each) twice per field: once in a cold session (incremental reuse off,
// every call a from-scratch synthesis) and once in an incremental session,
// and summarizes k≥2 latencies — the first example can never be served
// from retained state, so k=1 is excluded from the percentiles.
//
// Each refinement step is also checked against the incremental contract
// (see internal/engine/incremental.go): a step served from retained state
// must leave the inferred highlighting exactly as the previous step
// inferred it (the added example merely confirmed it), and a step that
// fell back must be bit-identical to the cold session's step, because the
// fallback runs the same deterministic from-scratch synthesis on the same
// spec. Violations of either invariant are counted and gate the
// differential suite.

// LatencySummary summarizes a latency sample set with exact nearest-rank
// percentiles (not histogram estimates: samples are retained and sorted).
type LatencySummary struct {
	Count int           `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// summarize computes the exact nearest-rank summary of a sample set.
func summarize(samples []time.Duration) LatencySummary {
	s := LatencySummary{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / time.Duration(len(sorted))
	rank := func(q float64) time.Duration {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	s.P50 = rank(0.50)
	s.P99 = rank(0.99)
	s.Max = sorted[len(sorted)-1]
	return s
}

// InteractiveSample is one refinement step of one field: the latency of
// learning from k examples in the cold and the incremental session, and
// whether the incremental session served the step from retained state.
type InteractiveSample struct {
	K           int           `json:"k"`
	Cold        time.Duration `json:"cold_ns"`
	Incremental time.Duration `json:"incremental_ns"`
	Hit         bool          `json:"hit"`
}

// InteractiveField is the per-field refinement trace.
type InteractiveField struct {
	Color   string              `json:"color"`
	Samples []InteractiveSample `json:"samples"`
	// Skipped is set when the field could not be measured (no program is
	// learnable ⊥-relative, or fewer than two golden instances exist).
	Skipped string `json:"skipped,omitempty"`
}

// InteractiveTask aggregates one document's refinement traces. The
// k≥2 summaries and the hit/fallback counters are the quantities the
// acceptance gates check. Divergences counts fallen-back refinement steps
// whose inferred highlighting differed from the cold session's same step;
// StabilityViolations counts hit steps whose highlighting differed from
// the previous step's. Both must always be zero (the differential suite
// pins the same invariants corpus-wide).
type InteractiveTask struct {
	Task                string             `json:"task"`
	Domain              string             `json:"domain"`
	Fields              []InteractiveField `json:"fields"`
	Cold                LatencySummary     `json:"cold_k2plus"`
	Incremental         LatencySummary     `json:"incremental_k2plus"`
	SpeedupP50          float64            `json:"speedup_p50"`
	Hits                int64              `json:"incremental_hits"`
	Fallbacks           int64              `json:"incremental_fallbacks"`
	Divergences         int                `json:"divergences"`
	StabilityViolations int                `json:"stability_violations"`
}

// InteractiveResult is the full benchmark output.
type InteractiveResult struct {
	MaxK                int               `json:"max_k"`
	Tasks               []InteractiveTask `json:"tasks"`
	Cold                LatencySummary    `json:"cold_k2plus"`
	Incremental         LatencySummary    `json:"incremental_k2plus"`
	SpeedupP50          float64           `json:"speedup_p50"`
	Hits                int64             `json:"incremental_hits"`
	Fallbacks           int64             `json:"incremental_fallbacks"`
	Divergences         int               `json:"divergences"`
	StabilityViolations int               `json:"stability_violations"`
}

// interactiveSessions holds the paired cold/incremental sessions of one
// field measurement.
type interactiveSessions struct {
	cold, inc *engine.Session
}

// MeasureInteractive runs the forced-k refinement benchmark over a task
// set. Every field with at least two golden instances is replayed with
// k = 1..maxK examples in a cold and an incremental session; each step's
// inferred highlighting is compared between the two. Fields whose first
// learn fails (e.g. fields only learnable relative to a materialized
// ancestor) are recorded as skipped.
func MeasureInteractive(tasks []*Task, maxK int) InteractiveResult {
	if maxK < 2 {
		maxK = 2
	}
	res := InteractiveResult{MaxK: maxK}
	var allCold, allInc []time.Duration
	for _, task := range tasks {
		tr := InteractiveTask{Task: task.Name, Domain: task.Domain}
		var taskCold, taskInc []time.Duration
		for _, fi := range task.Schema.Fields() {
			color := fi.Color()
			golden := append([]region.Region(nil), task.Golden[color]...)
			region.Sort(golden)
			fieldRes := InteractiveField{Color: color}
			if len(golden) < 2 {
				fieldRes.Skipped = "fewer than two golden instances"
				tr.Fields = append(tr.Fields, fieldRes)
				continue
			}
			ss := interactiveSessions{
				cold: engine.NewSession(task.Doc, task.Schema),
				inc:  engine.NewSession(task.Doc, task.Schema),
			}
			ss.cold.SetIncremental(false)
			ss.inc.SetIncremental(true)
			kMax := maxK
			if kMax > len(golden) {
				kMax = len(golden)
			}
			var prevInc []region.Region
			var prevHits int64
			for k := 1; k <= kMax; k++ {
				if err := ss.cold.AddPositive(color, golden[k-1]); err != nil {
					fieldRes.Skipped = err.Error()
					break
				}
				if err := ss.inc.AddPositive(color, golden[k-1]); err != nil {
					fieldRes.Skipped = err.Error()
					break
				}
				start := time.Now()
				_, coldOut, coldErr := ss.cold.Learn(color)
				coldDur := time.Since(start)
				start = time.Now()
				_, incOut, incErr := ss.inc.Learn(color)
				incDur := time.Since(start)
				hits := ss.inc.Stats().IncrementalHits
				hit := hits > prevHits
				prevHits = hits
				if hit {
					// A hit must keep the highlighting the previous step
					// inferred: the added example confirmed the program.
					if incErr != nil || !regionsEqual(prevInc, incOut) {
						tr.StabilityViolations++
					}
				} else {
					// A cold or fallen-back step is the same deterministic
					// from-scratch synthesis the cold session ran.
					if (coldErr == nil) != (incErr == nil) ||
						(coldErr == nil && !regionsEqual(coldOut, incOut)) {
						tr.Divergences++
					}
				}
				if coldErr != nil && !hit {
					fieldRes.Skipped = coldErr.Error()
					break
				}
				if incErr != nil {
					fieldRes.Skipped = incErr.Error()
					break
				}
				prevInc = incOut
				fieldRes.Samples = append(fieldRes.Samples, InteractiveSample{
					K: k, Cold: coldDur, Incremental: incDur, Hit: hit,
				})
				if k >= 2 {
					taskCold = append(taskCold, coldDur)
					taskInc = append(taskInc, incDur)
				}
			}
			tr.Fields = append(tr.Fields, fieldRes)
			st := ss.inc.Stats()
			tr.Hits += st.IncrementalHits
			tr.Fallbacks += st.IncrementalFallbacks
		}
		tr.Cold = summarize(taskCold)
		tr.Incremental = summarize(taskInc)
		tr.SpeedupP50 = speedup(tr.Cold.P50, tr.Incremental.P50)
		res.Tasks = append(res.Tasks, tr)
		allCold = append(allCold, taskCold...)
		allInc = append(allInc, taskInc...)
		res.Hits += tr.Hits
		res.Fallbacks += tr.Fallbacks
		res.Divergences += tr.Divergences
		res.StabilityViolations += tr.StabilityViolations
	}
	res.Cold = summarize(allCold)
	res.Incremental = summarize(allInc)
	res.SpeedupP50 = speedup(res.Cold.P50, res.Incremental.P50)
	return res
}

func speedup(cold, inc time.Duration) float64 {
	if inc <= 0 || cold <= 0 {
		return 0
	}
	return float64(cold) / float64(inc)
}

func regionsEqual(a, b []region.Region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
