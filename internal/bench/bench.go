// Package bench implements the experimental methodology of the paper's
// evaluation (§6): a benchmark task couples a document with an output
// schema and golden annotations for every field, and a simulator replays
// the example-based interaction in the hardest scenario — learning every
// field relative to ⊥, the whole document — measuring how many examples
// each field needs and how long the final synthesis call takes.
package bench

import (
	"context"
	"fmt"
	"time"

	"flashextract/internal/engine"
	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// Task is one benchmark document with its extraction task.
type Task struct {
	// Name is the document label (the x-axis labels of Figs. 10 and 11).
	Name string
	// Domain is "text", "web", or "sheet".
	Domain string
	// Doc is the document under extraction.
	Doc engine.Document
	// Source is the raw serialized form of Doc (text content, HTML, or
	// CSV), so batch runs can re-open the document from bytes the way the
	// CLI does from files.
	Source string
	// Schema is the output schema of the task.
	Schema *schema.Schema
	// Golden maps every field color to the manually annotated instances
	// that define the task.
	Golden map[string][]region.Region
}

// FieldResult records the simulated interaction for one field.
type FieldResult struct {
	Color      string
	Positives  int
	Negatives  int
	Iterations int
	// LastSynth is the synthesis time of the last iteration (the one with
	// the most examples), as reported in Fig. 11.
	LastSynth time.Duration
	Succeeded bool
	// FailReason describes why the simulation failed, if it did.
	FailReason string
	// Program is the final learned program when the simulation succeeded
	// (⊥-relative simulations only); it enables transfer evaluation.
	Program engine.SeqRegionProgram
}

// Examples returns the total number of examples given.
func (fr FieldResult) Examples() int { return fr.Positives + fr.Negatives }

// TaskResult aggregates a task's per-field results.
type TaskResult struct {
	Task   *Task
	Fields []FieldResult
}

// AllSucceeded reports whether every field converged to its golden set.
func (tr TaskResult) AllSucceeded() bool {
	for _, f := range tr.Fields {
		if !f.Succeeded {
			return false
		}
	}
	return true
}

// AvgExamples returns the average number of positive and negative
// instances per field.
func (tr TaskResult) AvgExamples() (pos, neg float64) {
	if len(tr.Fields) == 0 {
		return 0, 0
	}
	for _, f := range tr.Fields {
		pos += float64(f.Positives)
		neg += float64(f.Negatives)
	}
	n := float64(len(tr.Fields))
	return pos / n, neg / n
}

// AvgLastSynth returns the average last-iteration synthesis time per
// field.
func (tr TaskResult) AvgLastSynth() time.Duration {
	if len(tr.Fields) == 0 {
		return 0
	}
	var total time.Duration
	for _, f := range tr.Fields {
		total += f.LastSynth
	}
	return total / time.Duration(len(tr.Fields))
}

// MaxIterations bounds the simulated interaction per field; the paper's
// benchmarks converge within a handful of examples, so hitting this bound
// indicates a divergent task.
var MaxIterations = 24

// SimulateField replays the §6 interaction for one field in the hardest
// scenario (relative to ⊥): start with the first golden region as the only
// positive instance; each iteration synthesizes, executes, and adds the
// first mismatched region as a new positive (if missing from the output)
// or negative (if spurious) instance — along with all correctly
// highlighted regions occurring before it, as positives.
func SimulateField(doc engine.Document, golden []region.Region) FieldResult {
	fr := FieldResult{}
	if len(golden) == 0 {
		fr.FailReason = "no golden instances"
		return fr
	}
	golden = append([]region.Region(nil), golden...)
	region.Sort(golden)
	ex := engine.SeqRegionExample{
		Input:    doc.WholeRegion(),
		Positive: []region.Region{golden[0]},
	}
	lang := doc.Language()
	for iter := 1; iter <= MaxIterations; iter++ {
		fr.Iterations = iter
		fr.Positives = len(ex.Positive)
		fr.Negatives = len(ex.Negative)
		start := time.Now()
		progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{ex})
		fr.LastSynth = time.Since(start)
		if len(progs) == 0 {
			fr.FailReason = "synthesis failed"
			return fr
		}
		out, err := progs[0].ExtractSeq(doc.WholeRegion())
		if err != nil {
			fr.FailReason = fmt.Sprintf("execution failed: %v", err)
			return fr
		}
		missing, spurious, prefix := firstMismatch(golden, out)
		if missing == nil && spurious == nil {
			fr.Succeeded = true
			fr.Program = progs[0]
			return fr
		}
		// All correctly highlighted regions before the mismatch become
		// positive instances.
		for _, r := range prefix {
			ex.Positive = addRegion(ex.Positive, r)
		}
		if missing != nil {
			ex.Positive = addRegion(ex.Positive, missing)
		} else if g := overlappingGolden(golden, ex.Positive, spurious); g != nil {
			// The program highlighted a wrong extent overlapping an
			// intended instance: the user redraws the correct extent
			// rather than striking a region that covers wanted data.
			ex.Positive = addRegion(ex.Positive, g)
		} else {
			ex.Negative = addRegion(ex.Negative, spurious)
		}
	}
	fr.FailReason = fmt.Sprintf("no convergence within %d iterations", MaxIterations)
	return fr
}

// firstMismatch walks the golden and output sequences in document order.
// It returns the first golden region missing from the output, or the first
// output region absent from the golden set, together with the correctly
// highlighted regions preceding the mismatch.
func firstMismatch(golden, out []region.Region) (missing, spurious region.Region, prefix []region.Region) {
	i, j := 0, 0
	for i < len(golden) && j < len(out) {
		if golden[i] == out[j] {
			prefix = append(prefix, out[j])
			i++
			j++
			continue
		}
		if out[j].Less(golden[i]) {
			return nil, out[j], prefix
		}
		return golden[i], nil, prefix
	}
	if i < len(golden) {
		return golden[i], nil, prefix
	}
	if j < len(out) {
		return nil, out[j], prefix
	}
	return nil, nil, prefix
}

// overlappingGolden returns a golden region overlapping r that is not yet
// among the positives, or nil.
func overlappingGolden(golden, positives []region.Region, r region.Region) region.Region {
	for _, g := range golden {
		if g == r || !g.Overlaps(r) {
			continue
		}
		already := false
		for _, p := range positives {
			if p == g {
				already = true
				break
			}
		}
		if !already {
			return g
		}
	}
	return nil
}

func addRegion(rs []region.Region, r region.Region) []region.Region {
	for _, x := range rs {
		if x == r {
			return rs
		}
	}
	rs = append(rs, r)
	region.Sort(rs)
	return rs
}

// Run simulates every field of a task.
func Run(t *Task) TaskResult {
	tr := TaskResult{Task: t}
	for _, fi := range t.Schema.Fields() {
		golden := t.Golden[fi.Color()]
		fr := SimulateField(t.Doc, golden)
		fr.Color = fi.Color()
		tr.Fields = append(tr.Fields, fr)
	}
	return tr
}

// RunAll simulates a set of tasks.
func RunAll(tasks []*Task) []TaskResult {
	out := make([]TaskResult, len(tasks))
	for i, t := range tasks {
		out[i] = Run(t)
	}
	return out
}

// Summary aggregates results into the headline numbers of §6.
type Summary struct {
	Documents    int
	Fields       int
	Failures     int
	AvgExamples  float64
	AvgPositives float64
	AvgNegatives float64
	AvgLastSynth time.Duration
}

// Summarize computes the headline aggregate over task results.
func Summarize(results []TaskResult) Summary {
	var s Summary
	var synth time.Duration
	for _, tr := range results {
		s.Documents++
		for _, f := range tr.Fields {
			s.Fields++
			if !f.Succeeded {
				s.Failures++
			}
			s.AvgPositives += float64(f.Positives)
			s.AvgNegatives += float64(f.Negatives)
			synth += f.LastSynth
		}
	}
	if s.Fields > 0 {
		n := float64(s.Fields)
		s.AvgPositives /= n
		s.AvgNegatives /= n
		s.AvgExamples = s.AvgPositives + s.AvgNegatives
		s.AvgLastSynth = synth / time.Duration(s.Fields)
	}
	return s
}
