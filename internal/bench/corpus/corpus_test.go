package corpus

import (
	"testing"

	"flashextract/internal/bench"
)

// runDomain simulates every task of a domain and reports per-field
// failures; it is the expressiveness check of §6 (every task must be
// synthesizable).
func runDomain(t *testing.T, tasks []*bench.Task) {
	t.Helper()
	for _, task := range tasks {
		task := task
		t.Run(task.Name, func(t *testing.T) {
			res := bench.Run(task)
			for _, f := range res.Fields {
				if !f.Succeeded {
					t.Errorf("field %s: %s (pos=%d neg=%d iters=%d)",
						f.Color, f.FailReason, f.Positives, f.Negatives, f.Iterations)
				} else if f.Examples() > 8 {
					t.Logf("field %s needed %d examples", f.Color, f.Examples())
				}
			}
		})
	}
}

func TestTextCorpus(t *testing.T) {
	tasks := Text()
	if len(tasks) != 25 {
		t.Fatalf("text corpus has %d documents, want 25", len(tasks))
	}
	runDomain(t, tasks)
}

func TestWebCorpus(t *testing.T) {
	tasks := Web()
	if len(tasks) != 25 {
		t.Fatalf("web corpus has %d documents, want 25", len(tasks))
	}
	runDomain(t, tasks)
}

func TestSheetCorpus(t *testing.T) {
	tasks := Sheets()
	if len(tasks) != 25 {
		t.Fatalf("sheet corpus has %d documents, want 25", len(tasks))
	}
	runDomain(t, tasks)
}

func TestAllCorpus(t *testing.T) {
	tasks := All()
	if len(tasks) != 75 {
		t.Fatalf("corpus has %d documents, want 75", len(tasks))
	}
	seen := map[string]bool{}
	for _, task := range tasks {
		if seen[task.Name] {
			t.Errorf("duplicate document name %q", task.Name)
		}
		seen[task.Name] = true
	}
	if got := ByName("hadoop"); got == nil || got.Domain != "text" {
		t.Fatal("ByName lookup broken")
	}
	if ByName("nonexistent") != nil {
		t.Fatal("ByName should return nil for unknown names")
	}
}

// TestTopDownWorkflowAllTasks verifies the recommended §3 top-down
// ordering converges for every document: fields learned relative to their
// materialized ancestors, committed in schema order.
func TestTopDownWorkflowAllTasks(t *testing.T) {
	for _, task := range All() {
		task := task
		t.Run(task.Name, func(t *testing.T) {
			res := bench.RunTopDown(task)
			for _, f := range res.Fields {
				if !f.Succeeded {
					t.Errorf("field %s: %s (pos=%d neg=%d iters=%d)",
						f.Color, f.FailReason, f.Positives, f.Negatives, f.Iterations)
				}
			}
		})
	}
}

// TestWebTransfer verifies the §2 transfer workflow: programs learned on
// one page extract the golden annotation of a same-layout page with a
// different catalog, with no new examples.
func TestWebTransfer(t *testing.T) {
	for _, pair := range WebTransfer() {
		pair := pair
		t.Run(pair[0].Name, func(t *testing.T) {
			for _, tr := range bench.RunTransfer(pair[0], pair[1]) {
				if !tr.Learned {
					t.Errorf("field %s: %s", tr.Color, tr.Detail)
					continue
				}
				if !tr.Transferred {
					t.Errorf("field %s did not transfer: %s", tr.Color, tr.Detail)
				}
			}
		})
	}
}
