package corpus

import (
	"fmt"

	"flashextract/internal/bench"
	"flashextract/internal/region"
	"flashextract/internal/schema"
	"flashextract/internal/sheet"
	"flashextract/internal/sheetlang"
)

// sheetBuilder assembles a spreadsheet while recording golden regions.
type sheetBuilder struct {
	rows  [][]string
	marks map[string][][4]int // color → (r1,c1,r2,c2); cells have r1==r2,c1==c2
}

func newSheetBuilder() *sheetBuilder {
	return &sheetBuilder{marks: map[string][][4]int{}}
}

// row appends a row and returns its index.
func (b *sheetBuilder) row(cells ...string) int {
	b.rows = append(b.rows, cells)
	return len(b.rows) - 1
}

// cell records a golden cell region.
func (b *sheetBuilder) cell(color string, r, c int) {
	b.marks[color] = append(b.marks[color], [4]int{r, c, r, c})
}

// rect records a golden rectangular region.
func (b *sheetBuilder) rect(color string, r1, c1, r2, c2 int) {
	b.marks[color] = append(b.marks[color], [4]int{r1, c1, r2, c2})
}

// rowRect records a golden full-width row region.
func (b *sheetBuilder) rowRect(color string, r, cols int) {
	b.rect(color, r, 0, r, cols-1)
}

// task finalizes the workbook into a benchmark task.
func (b *sheetBuilder) task(name, schemaSrc string) *bench.Task {
	cols := 0
	for _, r := range b.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	g := sheet.New(len(b.rows), cols)
	for r, row := range b.rows {
		for c, v := range row {
			g.Set(r, c, v)
		}
	}
	doc := sheetlang.NewDocument(g)
	m := schema.MustParse(schemaSrc)
	golden := map[string][]region.Region{}
	for color, ms := range b.marks {
		if m.FieldByColor(color) == nil {
			panic("corpus: golden color " + color + " not in schema for " + name)
		}
		var rs []region.Region
		for _, mk := range ms {
			if mk[0] == mk[2] && mk[1] == mk[3] {
				rs = append(rs, doc.CellAt(mk[0], mk[1]))
			} else {
				rs = append(rs, doc.Rect(mk[0], mk[1], mk[2], mk[3]))
			}
		}
		region.Sort(rs)
		golden[color] = rs
	}
	for _, fi := range m.Fields() {
		if _, ok := golden[fi.Color()]; !ok {
			panic("corpus: no golden regions for color " + fi.Color() + " in " + name)
		}
	}
	return &bench.Task{Name: name, Domain: "sheet", Doc: doc, Source: g.ToCSV(), Schema: m, Golden: golden}
}

// departmentSheet builds a Fig. 3-style workbook: department blocks of
// investigator rows with subtotal rows. Fields: record rows, investigator
// name, amount, and department name.
func departmentSheet(name, title, label string, depts []deptBlock) *bench.Task {
	b := newSheetBuilder()
	b.row(title, "", "", "")
	b.row("", "", "", "")
	for _, d := range depts {
		r := b.row(label, d.name, "", "")
		b.cell("dept", r, 1)
		total := 0
		for _, p := range d.rows {
			r := b.row(p.who, p.org, fmt.Sprint(p.amt), p.status)
			b.rowRect("rec", r, 4)
			b.cell("who", r, 0)
			b.cell("amt", r, 2)
			total += p.amt
		}
		b.row("Subtotal", "", fmt.Sprint(total), "")
	}
	return b.task(name, `Struct(
		Departments: Seq([dept] String),
		Records: Seq([rec] Struct(Investigator: [who] String, Amount: [amt] Int)))`)
}

type deptRow struct {
	who, org, status string
	amt              int
}

type deptBlock struct {
	name string
	rows []deptRow
}

// headerTable builds a plain header + data rows table. Fields: record
// rows, the label column, and a numeric column. The base data is cycled to
// several times its length with derived labels and values, giving the
// workbooks realistic sizes.
func headerTable(name string, header []string, data [][]string, numCol int) *bench.Task {
	b := newSheetBuilder()
	b.row(header...)
	const copies = 3
	for rep := 0; rep < copies; rep++ {
		for i, d := range data {
			row := append([]string(nil), d...)
			if rep > 0 {
				row[0] = fmt.Sprintf("%s%d", d[0], rep+1)
				row[numCol] = fmt.Sprintf("%d%s", rep, d[numCol])
				_ = i
			}
			r := b.row(row...)
			b.rowRect("rec", r, len(header))
			b.cell("label", r, 0)
			b.cell("num", r, numCol)
		}
	}
	return b.task(name, `Seq([rec] Struct(Label: [label] String, Value: [num] Float))`)
}

// twoRowRecords builds records spanning two rows: the first row carries
// the name (and a numeric id), the second an indented detail. Fields:
// two-row record rectangles, name, and detail.
func twoRowRecords(name string, entries [][3]string) *bench.Task {
	b := newSheetBuilder()
	b.row("Registry", "", "")
	for _, e := range entries {
		r1 := b.row(e[0], e[1], "")
		r2 := b.row("", "note", e[2])
		b.rect("rec", r1, 0, r2, 2)
		b.cell("nm", r1, 0)
		b.cell("note", r2, 2)
	}
	return b.task(name, `Seq([rec] Struct(Name: [nm] String, Note: [note] String))`)
}

// labeledLedger builds label/value rows where only rows with a recurring
// marker label are extracted.
func labeledLedger(name, marker, other string, vals []string, noise []string) *bench.Task {
	b := newSheetBuilder()
	b.row("Ledger", "")
	for i, v := range vals {
		if i < len(noise) {
			b.row(other, noise[i])
		}
		r := b.row(marker, v)
		b.cell("val", r, 1)
	}
	return b.task(name, `Seq([val] Float)`)
}

// Sheets returns the 25 spreadsheet benchmark tasks (named after Fig. 10).
func Sheets() []*bench.Task {
	var out []*bench.Task

	// The seven Harris & Gulwani documents: department-block layouts with
	// varying titles, labels, and contents.
	hg := []struct {
		name, title, label string
		seed               int
	}{
		{"hg_ex12", "Grant summary FY12", "Dept:", 1},
		{"hg_ex18", "Awards by division", "Division:", 2},
		{"hg_ex2", "Funding report", "Unit:", 3},
		{"hg_ex26", "Q1 allocations", "Group:", 4},
		{"hg_ex29", "Budget lines", "Area:", 5},
		{"hg_ex3", "Sponsored research", "School:", 6},
		{"hg_ex39", "February funding", "Department:", 7},
	}
	deptNames := []string{"Biology", "Chemistry", "Physics", "Geology", "Botany", "History", "Music"}
	people := []string{"Lee", "Kim", "Cho", "Park", "Ruiz", "May", "Woo", "Diaz", "Nash", "Bell"}
	orgs := []string{"NSF", "NIH", "DOE", "NASA", "DOD", "EPA"}
	for _, h := range hg {
		var blocks []deptBlock
		nd := 3 + h.seed%4
		for d := 0; d < nd; d++ {
			var rows []deptRow
			nr := 2 + (h.seed+d)%4
			for r := 0; r < nr; r++ {
				rows = append(rows, deptRow{
					who:    people[(h.seed*3+d*2+r)%len(people)],
					org:    orgs[(h.seed+d+r*2)%len(orgs)],
					status: []string{"approved", "pending"}[(h.seed+r)%2],
					amt:    500 + (h.seed*700+d*300+r*211)%9000,
				})
			}
			blocks = append(blocks, deptBlock{name: deptNames[(h.seed+d)%len(deptNames)], rows: rows})
		}
		out = append(out, departmentSheet(h.name, h.title, h.label, blocks))
	}

	// EUSES-style documents.
	out = append(out,
		headerTable("_h8d62ck1",
			[]string{"Region", "Sales", "Returns"},
			[][]string{
				{"North", "1200.50", "3"}, {"South", "980.00", "1"}, {"East", "1410.25", "7"},
				{"West", "760.40", "2"}, {"Central", "1100.00", "5"},
			}, 1),
		headerTable("03PFMJOU",
			[]string{"Fund", "Balance", "Manager"},
			[][]string{
				{"Growth", "125000.00", "Ames"}, {"Income", "87500.50", "Bose"},
				{"Index", "203400.75", "Crow"}, {"Bond", "56100.00", "Dunn"},
			}, 1),
		headerTable("2003Fall",
			[]string{"Course", "Enrolled", "Waitlist"},
			[][]string{
				{"CS101", "240", "12"}, {"CS201", "180", "4"}, {"CS301", "95", "0"},
				{"CS401", "60", "2"}, {"CS501", "35", "1"}, {"CS601", "18", "0"},
			}, 1),
		headerTable("64040",
			[]string{"Part", "Qty", "UnitCost"},
			[][]string{
				{"Bolt", "500", "0.12"}, {"Nut", "480", "0.08"}, {"Washer", "900", "0.03"},
				{"Screw", "650", "0.10"}, {"Anchor", "120", "0.45"},
			}, 2),
		twoRowRecords("anrep9899", [][3]string{
			{"Alpha Chapter", "1898", "founded first"},
			{"Beta Chapter", "1899", "western branch"},
			{"Gamma Chapter", "1901", "merged later"},
			{"Delta Chapter", "1904", "largest body"},
		}),
		headerTable("bali",
			[]string{"Site", "Visitors", "Fee"},
			[][]string{
				{"Uluwatu", "3200", "5.00"}, {"Besakih", "2100", "4.50"}, {"Tirta", "1800", "3.75"},
				{"Lovina", "900", "2.00"},
			}, 1),
		headerTable("ch15_e",
			[]string{"Exercise", "Points", "Difficulty"},
			[][]string{
				{"Warmup", "5", "easy"}, {"Recursion", "15", "medium"}, {"Closures", "20", "hard"},
				{"Monads", "30", "hard"}, {"Review", "10", "easy"},
			}, 1),
		labeledLedger("compliance", "Fine", "Inspection",
			[]string{"250.00", "1000.00", "75.50", "400.00"},
			[]string{"passed", "passed", "failed"}),
		twoRowRecords("DataDiction", [][3]string{
			{"cust_id", "9001", "primary key"},
			{"cust_name", "9002", "display name"},
			{"order_ts", "9003", "unix epoch"},
		}),
		headerTable("deliverable",
			[]string{"Milestone", "Month", "Owner"},
			[][]string{
				{"Kickoff", "1", "PM"}, {"Prototype", "4", "Eng"}, {"Pilot", "7", "Ops"},
				{"Launch", "10", "PM"}, {"Retro", "12", "All"},
			}, 1),
		headerTable("e_Bubble_",
			[]string{"Ticker", "Peak", "Trough"},
			[][]string{
				{"PETS", "14.00", "0.19"}, {"WBVN", "25.50", "0.06"}, {"ETYS", "86.00", "0.09"},
				{"GCTY", "62.75", "0.52"},
			}, 1),
		labeledLedger("flip_usd5", "Rate", "Note",
			[]string{"1.0850", "1.0921", "1.0774", "1.0832", "1.0899"},
			[]string{"holiday", "auction"}),
		departmentSheet("Funded - F", "Funded Proposals February", "Department:", []deptBlock{
			{"Biology", []deptRow{
				{"Lee", "NSF", "approved", 4000}, {"Kim", "NIH", "approved", 2500},
			}},
			{"Chemistry", []deptRow{{"Cho", "DOE", "pending", 1200}}},
			{"Physics", []deptRow{
				{"Park", "NASA", "approved", 900}, {"Ruiz", "NSF", "approved", 3100}, {"May", "DOD", "pending", 700},
			}},
		}),
		headerTable("ge-revenues",
			[]string{"Segment", "Revenue", "Margin"},
			[][]string{
				{"Aviation", "21900.00", "19.2"}, {"Healthcare", "16700.00", "17.8"},
				{"Power", "18300.00", "8.1"}, {"Renewables", "9000.00", "3.2"},
				{"Capital", "7400.00", "5.5"},
			}, 1),
		headerTable("HOSPITAL",
			[]string{"Ward", "Beds", "Occupied"},
			[][]string{
				{"ICU", "24", "21"}, {"Surgery", "40", "33"}, {"Pediatrics", "30", "12"},
				{"Maternity", "26", "19"}, {"Oncology", "22", "20"},
			}, 1),
		labeledLedger("pwpSurvey", "Score", "Comment",
			[]string{"4.5", "3.8", "4.9", "2.7", "4.1"},
			[]string{"too long", "loved it", "confusing"}),
		headerTable("SOA4-YEAR",
			[]string{"Year", "Premium", "Claims"},
			[][]string{
				{"Y2000", "100.00", "61.50"}, {"Y2001", "104.00", "72.10"},
				{"Y2002", "109.50", "68.30"}, {"Y2003", "112.25", "80.00"},
			}, 1),
		twoRowRecords("young_table", [][3]string{
			{"Group A", "12", "under five"},
			{"Group B", "17", "five to nine"},
			{"Group C", "9", "ten to twelve"},
		}),
	)
	return out
}
