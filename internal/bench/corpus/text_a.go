package corpus

import "flashextract/internal/bench"

// Text returns the 25 text-file benchmark tasks (named after Fig. 10).
func Text() []*bench.Task {
	return []*bench.Task{
		textAccounts(), textAddresses(), textSplit(), textChairs(), textAwk(),
		textBanks(), textCompanies(), textCountries(), textHadoop(), textHorses(),
		textInstruments(), textLsL(), textMgx(), textNamePhone(), textNozzle(),
		textNumberText(), textPapers(), textPLDI12(), textPLDI13(), textPOP13(),
		textQuotes(), textSpeechBench(), textTechFest(), textUCLAFaculty(), textUsers(),
	}
}

func textAccounts() *bench.Task {
	b := newTextBuilder()
	b.raw("Account export (generated Mon Feb 11)\n")
	b.raw("currency: USD\n\n")
	rows := []struct{ id, owner, bal string }{
		{"7031", "alice.brown", "4221.50"},
		{"7032", "bob.jones", "318.07"},
		{"7105", "carol.wu", "12940.00"},
		{"7106", "dan.ortiz", "87.25"},
		{"7201", "erin.kim", "2050.75"},
		{"7202", "frank.hall", "660.10"},
		{"7310", "gail.roy", "15000.33"},
	}
	for _, r := range rows {
		b.begin("rec")
		b.raw("ACC-").field("id", r.id)
		b.raw(" owner=").field("owner", r.owner)
		b.raw(" balance=").field("bal", r.bal)
		b.raw(" USD")
		b.end("rec")
		b.raw("\n")
	}
	b.raw("\nend of export\n")
	return b.task("accounts", `Seq([rec] Struct(ID: [id] Int, Owner: [owner] String, Balance: [bal] Float))`)
}

func textAddresses() *bench.Task {
	b := newTextBuilder()
	b.raw("Mailing list -- delivery run 42\n\n")
	rows := []struct{ name, street, city, zip string }{
		{"Ada Lovelace", "12 Analytical Way", "London", "20252"},
		{"Grace Hopper", "3 Compiler Court", "Arlington", "22203"},
		{"Alan Turing", "1 Enigma Road", "Manchester", "13337"},
		{"Barbara Liskov", "77 Substitution St", "Cambridge", "02139"},
		{"John Backus", "9 Fortran Blvd", "Yorktown", "10598"},
	}
	for _, r := range rows {
		b.begin("blk")
		b.field("name", r.name).raw("\n")
		b.raw(r.street).raw("\n")
		b.field("city", r.city).raw(", ZIP ").field("zip", r.zip)
		b.end("blk")
		b.raw("\n\n")
	}
	return b.task("addresses", `Seq([blk] Struct(Name: [name] String, City: [city] String, Zip: [zip] String))`)
}

func textSplit() *bench.Task {
	b := newTextBuilder()
	b.raw("# fields: code|label|score\n")
	rows := []struct{ a, b, c string }{
		{"K1", "alpha", "9.5"}, {"K2", "beta", "7.1"}, {"K7", "gamma", "8.8"},
		{"M3", "delta", "5.0"}, {"M9", "epsilon", "6.42"}, {"Q4", "zeta", "3.3"},
	}
	for _, r := range rows {
		b.begin("rec")
		b.field("a", r.a).raw("|").field("b", r.b).raw("|").field("c", r.c)
		b.end("rec")
		b.raw("\n")
	}
	return b.task("split", `Seq([rec] Struct(Code: [a] String, Label: [b] String, Score: [c] Float))`)
}

func textChairs() *bench.Task {
	b := newTextBuilder()
	b.raw("showroom inventory\n")
	rows := []struct{ name, price, stock string }{
		{"Aeron Classic", "540.00", "12"},
		{"Oslo Lounger", "220.50", "4"},
		{"Tulip Side", "99.99", "31"},
		{"Windsor Oak", "185.00", "7"},
		{"Eames Replica", "310.25", "2"},
		{"Bistro Steel", "75.40", "18"},
	}
	for _, r := range rows {
		b.raw("Chair: ").field("name", r.name)
		b.raw(" (price: $").field("price", r.price)
		b.raw(", stock: ").field("stock", r.stock)
		b.raw(")\n")
	}
	return b.task("chairs", `Struct(Names: Seq([name] String), Prices: Seq([price] Float), Stock: Seq([stock] Int))`)
}

func textAwk() *bench.Task {
	b := newTextBuilder()
	b.raw("NAME REQUESTS REGION\n")
	rows := []struct{ name, req, region string }{
		{"frodo", "42", "shire"}, {"sam", "17", "shire"}, {"gandalf", "99", "valinor"},
		{"aragorn", "56", "gondor"}, {"gimli", "23", "erebor"}, {"legolas", "31", "mirkwood"},
		{"boromir", "12", "gondor"},
	}
	for _, r := range rows {
		b.begin("rec")
		b.field("name", r.name).raw(" ").field("req", r.req).raw(" ").field("region", r.region)
		b.end("rec")
		b.raw("\n")
	}
	return b.task("awk", `Seq([rec] Struct(Name: [name] String, Requests: [req] Int, Region: [region] String))`)
}

func textBanks() *bench.Task {
	b := newTextBuilder()
	b.raw("registered institutions:\n\n")
	rows := []struct{ name, swift, assets string }{
		{"First National Bank", "FNBAUS33", "120.5"},
		{"Harbor Trust", "HTRUUS44", "88.2"},
		{"Union Savings", "UNSVGB21", "301.9"},
		{"Pacific Mutual", "PMUTUS66", "54.7"},
		{"Crown Credit", "CRWNCA02", "17.3"},
	}
	for _, r := range rows {
		b.field("name", r.name)
		b.raw("; SWIFT: ").field("swift", r.swift)
		b.raw("; assets: ").field("assets", r.assets)
		b.raw("B\n")
	}
	return b.task("banks", `Struct(Banks: Seq([name] String), Swift: Seq([swift] String), Assets: Seq([assets] Float))`)
}

func textCompanies() *bench.Task {
	b := newTextBuilder()
	b.raw("tech directory 2013\n\n")
	rows := []struct{ co, tick, hq string }{
		{"International Business Machines", "IBM", "Armonk"},
		{"Microsoft Corporation", "MSFT", "Redmond"},
		{"Oracle Systems", "ORCL", "Redwood City"},
		{"Intel Corporation", "INTC", "Santa Clara"},
		{"Adobe Incorporated", "ADBE", "San Jose"},
		{"Autodesk Limited", "ADSK", "San Rafael"},
	}
	for _, r := range rows {
		b.field("co", r.co)
		b.raw(" (NYSE:").field("tick", r.tick)
		b.raw(") HQ: ").field("hq", r.hq)
		b.raw("\n")
	}
	return b.task("companies", `Struct(Company: Seq([co] String), Ticker: Seq([tick] String), HQ: Seq([hq] String))`)
}

func textCountries() *bench.Task {
	b := newTextBuilder()
	b.raw("country :: capital :: population (millions)\n")
	rows := []struct{ c, cap, pop string }{
		{"Norway", "Oslo", "5.4"}, {"Peru", "Lima", "33.0"}, {"Kenya", "Nairobi", "53.7"},
		{"Japan", "Tokyo", "125.8"}, {"Chile", "Santiago", "19.1"}, {"Nepal", "Kathmandu", "29.1"},
		{"Fiji", "Suva", "0.9"},
	}
	for _, r := range rows {
		b.begin("rec")
		b.field("c", r.c).raw(" :: ").field("cap", r.cap).raw(" :: ").field("pop", r.pop)
		b.end("rec")
		b.raw("\n")
	}
	return b.task("countries", `Seq([rec] Struct(Country: [c] String, Capital: [cap] String, Population: [pop] Float))`)
}

func textHadoop() *bench.Task {
	b := newTextBuilder()
	b.raw("DataNode log excerpt\n")
	rows := []struct {
		ts, level, msg string
	}{
		{"2013-02-11 10:02:11", "INFO", "Block pool registered"},
		{"2013-02-11 10:02:45", "WARN", "Disk latency above threshold"},
		{"2013-02-11 10:03:01", "INFO", "Heartbeat sent to namenode"},
		{"2013-02-11 10:04:17", "WARN", "Replica count below target"},
		{"2013-02-11 10:05:59", "INFO", "Scanning block pool"},
		{"2013-02-11 10:06:21", "WARN", "Checksum mismatch during scan"},
		{"2013-02-11 10:07:00", "INFO", "Scan finished"},
	}
	for _, r := range rows {
		b.field("ts", r.ts)
		b.rawf(" dn.storage %s: ", r.level)
		if r.level == "WARN" {
			b.field("warnmsg", r.msg)
		} else {
			b.raw(r.msg)
		}
		b.raw("\n")
	}
	return b.task("hadoop", `Struct(Stamps: Seq([ts] String), Warnings: Seq([warnmsg] String))`)
}

func textHorses() *bench.Task {
	b := newTextBuilder()
	b.raw("Derby results -- final\n\n")
	rows := []struct{ pos, horse, time string }{
		{"1", "Secretariat", "1:59.40"}, {"2", "Sham", "2:00.10"},
		{"3", "Our Native", "2:02.55"}, {"4", "Forego", "2:03.00"},
		{"5", "Restless Jet", "2:04.25"}, {"6", "Shecky Greene", "2:05.80"},
	}
	for _, r := range rows {
		b.field("pos", r.pos).raw(". ")
		b.field("horse", r.horse)
		b.raw(" finished in ").field("time", r.time)
		b.raw("\n")
	}
	return b.task("horses", `Struct(Position: Seq([pos] Int), Horse: Seq([horse] String), Time: Seq([time] String))`)
}

func textInstruments() *bench.Task {
	b := newTextBuilder()
	b.raw("station readouts\n\n")
	rows := []struct{ id, temp, hum string }{
		{"T-100", "21.5", "40"}, {"T-101", "19.8", "55"}, {"T-205", "23.1", "38"},
		{"T-206", "18.0", "61"}, {"T-300", "25.6", "33"},
	}
	for _, r := range rows {
		b.begin("blk")
		b.raw("sensor ").field("id", r.id).raw("\n")
		b.raw("  temp: ").field("temp", r.temp).raw("\n")
		b.raw("  hum: ").field("hum", r.hum)
		b.end("blk")
		b.raw("\n\n")
	}
	return b.task("instruments", `Seq([blk] Struct(ID: [id] String, Temp: [temp] Float, Humidity: [hum] Int))`)
}

func textLsL() *bench.Task {
	b := newTextBuilder()
	b.raw("total 164\n")
	rows := []struct{ perm, size, date, name string }{
		{"-rw-r--r--", "4096", "Feb 11 10:22", "notes.txt"},
		{"-rw-r--r--", "88112", "Feb 09 18:05", "draft.pdf"},
		{"-rwxr-xr-x", "733", "Jan 30 09:41", "run.sh"},
		{"-rw-------", "52", "Feb 02 23:59", "secrets.env"},
		{"-rw-r--r--", "12000", "Feb 10 07:15", "data.csv"},
		{"-rwxr-xr-x", "9216", "Jan 12 14:02", "tool"},
	}
	for _, r := range rows {
		b.begin("rec")
		b.rawf("%s 1 root staff ", r.perm)
		b.field("size", r.size)
		b.rawf(" %s ", r.date)
		b.field("fname", r.name)
		b.end("rec")
		b.raw("\n")
	}
	return b.task("ls-l", `Seq([rec] Struct(Size: [size] Int, Name: [fname] String))`)
}

func textMgx() *bench.Task {
	b := newTextBuilder()
	b.raw("; mgx engine configuration\n")
	sections := []struct {
		name    string
		entries [][2]string
	}{
		{"core", [][2]string{{"timeout", "30"}, {"retries", "5"}}},
		{"render", [][2]string{{"width", "1920"}, {"height", "1080"}, {"vsync", "1"}}},
		{"audio", [][2]string{{"rate", "44100"}, {"channels", "2"}}},
	}
	for _, s := range sections {
		b.raw("[").field("sect", s.name).raw("]\n")
		for _, e := range s.entries {
			b.field("key", e[0]).raw(" = ").field("val", e[1]).raw("\n")
		}
	}
	return b.task("mgx", `Struct(Sections: Seq([sect] String), Keys: Seq([key] String), Values: Seq([val] Int))`)
}
