// Package corpus provides the 75-document benchmark of the paper's
// evaluation (§6): 25 text files, 25 webpages, and 25 spreadsheets, each
// with an output schema and golden annotations for every field.
//
// The original benchmark documents (help-forum text files, the SXPath
// e-commerce pages, and EUSES spreadsheets) are not redistributable, so
// the corpus is synthesized by generators that reproduce the structural
// challenges the paper describes — multi-format sequences that need Merge,
// null fields, records crossing line boundaries, per-site DOM variation,
// and semi-structured workbooks with subtotal rows — under the document
// names of Figs. 10 and 11.
package corpus

import "flashextract/internal/bench"

// All returns the full 75-document benchmark.
func All() []*bench.Task {
	var out []*bench.Task
	out = append(out, Text()...)
	out = append(out, Web()...)
	out = append(out, Sheets()...)
	return out
}

// ByName returns the task with the given document name, or nil. The
// stress documents of Large are addressable alongside the paper corpus.
func ByName(name string) *bench.Task {
	for _, t := range AllWithLarge() {
		if t.Name == name {
			return t
		}
	}
	return nil
}
