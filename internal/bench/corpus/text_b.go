package corpus

import "flashextract/internal/bench"

func textNamePhone() *bench.Task {
	b := newTextBuilder()
	b.raw("phone directory (work)\n\n")
	rows := []struct{ name, phone string }{
		{"John Smith", "425-555-0199"}, {"Mary Major", "206-555-0133"},
		{"Luis Ortega", "360-555-0102"}, {"Priya Patel", "509-555-0147"},
		{"Chen Wei", "425-555-0161"}, {"Sara Kim", "253-555-0189"},
	}
	for _, r := range rows {
		b.field("name", r.name).raw(": ").field("phone", r.phone).raw("\n")
	}
	return b.task("namephone", `Struct(Name: Seq([name] String), Phone: Seq([phone] String))`)
}

func textNozzle() *bench.Task {
	b := newTextBuilder()
	b.raw("nozzle test bench, run 7\n\n")
	rows := []struct{ id, flow, pres string }{
		{"N-4", "12.5", "2.10"}, {"N-5", "11.8", "2.35"}, {"N-9", "14.2", "1.95"},
		{"N-12", "9.7", "2.60"}, {"N-15", "13.3", "2.05"},
	}
	for _, r := range rows {
		b.raw("Nozzle ").field("id", r.id)
		b.raw(": flow=").field("flow", r.flow)
		b.raw(" pressure=").field("pres", r.pres)
		b.raw("\n")
	}
	return b.task("nozzle", `Struct(ID: Seq([id] String), Flow: Seq([flow] Float), Pressure: Seq([pres] Float))`)
}

func textNumberText() *bench.Task {
	// Amounts appear in TWO formats (order lines and refund lines), so the
	// amount field needs the Merge operator — the "disjunctive abstraction"
	// the paper introduces for multiple-format field instances.
	b := newTextBuilder()
	b.raw("order notes\n\n")
	rows := []struct{ kind, qty, part, amt string }{
		{"o", "12", "A-7", "38.50"},
		{"r", "", "B-2", "9.75"},
		{"o", "40", "C-19", "412.00"},
		{"o", "7", "A-3", "21.10"},
		{"r", "", "D-11", "150.25"},
	}
	for _, r := range rows {
		if r.kind == "o" {
			b.raw("Ordered ").field("qty", r.qty)
			b.rawf(" units of part %s for $", r.part)
			b.field("amt", r.amt)
			b.raw(" total\n")
		} else {
			b.rawf("Refund of $")
			b.field("amt", r.amt)
			b.rawf(" issued for part %s\n", r.part)
		}
	}
	return b.task("numbertext", `Struct(Quantity: Seq([qty] Int), Amount: Seq([amt] Float))`)
}

func textPapers() *bench.Task {
	b := newTextBuilder()
	b.raw("reading list\n\n")
	rows := []struct{ author, title, venue, year string }{
		{"Gulwani, S", "Automating string processing in spreadsheets", "POPL", "2011"},
		{"Harris, W", "Spreadsheet table transformations from examples", "PLDI", "2011"},
		{"Singh, R", "Learning semantic string transformations", "VLDB", "2012"},
		{"Fisher, K", "From dirt to shovels", "POPL", "2008"},
		{"Miller, R", "Lightweight structure in text", "CMU", "2002"},
		{"Yessenov, K", "A colorful approach to text processing", "UIST", "2013"},
	}
	for _, r := range rows {
		b.field("author", r.author)
		b.raw(": ").field("title", r.title)
		b.raw(" (").field("venue", r.venue)
		b.raw(" ").field("year", r.year)
		b.raw(")\n")
	}
	return b.task("papers", `Struct(Author: Seq([author] String), Title: Seq([title] String), Venue: Seq([venue] String), Year: Seq([year] Int))`)
}

// conferenceProgram builds a hierarchical session/talk program in the
// given visual style.
func conferenceProgram(name string, sessions []progSession, style int) *bench.Task {
	b := newTextBuilder()
	b.raw("conference program\n\n")
	for _, s := range sessions {
		b.begin("sess")
		switch style {
		case 0:
			b.raw("Session ").raw(s.num).raw(": ").field("sname", s.name).raw("\n")
		case 1:
			b.raw("== ").field("sname", s.name).raw(" ==\n")
		default:
			b.raw("[S").raw(s.num).raw("] ").field("sname", s.name).raw("\n")
		}
		for ti, t := range s.talks {
			b.begin("talk")
			switch style {
			case 0:
				b.raw("  ").field("time", t.time).raw(" ").field("title", t.title)
			case 1:
				b.raw("* ").field("title", t.title).raw(" @ ").field("time", t.time)
			default:
				b.raw("- ").field("title", t.title).raw(" // ").field("time", t.time)
			}
			b.end("talk")
			if ti < len(s.talks)-1 {
				b.raw("\n")
			}
		}
		// The session region ends exactly at its last talk; a blank line
		// separates sessions (and closes the final one).
		b.end("sess")
		b.raw("\n\n")
	}
	return b.task(name, `Seq([sess] Struct(Name: [sname] String, Talks: Seq([talk] Struct(Title: [title] String, Time: [time] String))))`)
}

type progTalk struct{ time, title string }

type progSession struct {
	num   string
	name  string
	talks []progTalk
}

func textPLDI12() *bench.Task {
	return conferenceProgram("pldi12", []progSession{
		{"1", "Program Synthesis", []progTalk{
			{"10:20", "Synthesizing data extraction"}, {"10:45", "Oracles and counterexamples"},
		}},
		{"2", "Verification", []progTalk{
			{"13:30", "Proving heap invariants"}, {"13:55", "Model checking at scale"}, {"14:20", "Abstract domains revisited"},
		}},
		{"3", "Compilers", []progTalk{
			{"16:00", "Vectorizing irregular loops"}, {"16:25", "Register allocation redux"},
		}},
	}, 0)
}

func textPLDI13() *bench.Task {
	return conferenceProgram("pldi13", []progSession{
		{"1", "Types and Effects", []progTalk{
			{"09:00", "Gradual typing reconsidered"}, {"09:25", "Effect inference in practice"},
		}},
		{"2", "Concurrency", []progTalk{
			{"11:10", "Fences without fear"}, {"11:35", "Transactional memory pitfalls"},
		}},
		{"3", "Program Analysis", []progTalk{
			{"14:40", "Scaling points-to analysis"}, {"15:05", "Sparse dataflow engines"}, {"15:30", "Demand-driven slicing"},
		}},
	}, 1)
}

func textPOP13() *bench.Task {
	return conferenceProgram("pop13", []progSession{
		{"1", "Semantics", []progTalk{
			{"08:50", "Step-indexed logical relations"}, {"09:15", "Full abstraction results"},
		}},
		{"2", "Proof Assistants", []progTalk{
			{"10:40", "Tactics for mortals"}, {"11:05", "Certified compilation pipelines"},
		}},
	}, 2)
}

func textQuotes() *bench.Task {
	b := newTextBuilder()
	b.raw("commonplace book\n\n")
	rows := []struct{ quote, author, year string }{
		{"Be yourself; everyone else is taken", "Oscar Wilde", "1890"},
		{"Simplicity is the soul of efficiency", "Austin Freeman", "1924"},
		{"Make it work, make it right, make it fast", "Kent Beck", "1997"},
		{"Programs must be written for people to read", "Hal Abelson", "1985"},
		{"Premature optimization is the root of all evil", "Donald Knuth", "1974"},
	}
	for _, r := range rows {
		b.raw(`"`).field("quote", r.quote).raw(`" -- `)
		b.field("author", r.author)
		b.raw(" (").field("year", r.year).raw(")\n")
	}
	return b.task("quotes", `Struct(Quote: Seq([quote] String), Author: Seq([author] String), Year: Seq([year] Int))`)
}

func textSpeechBench() *bench.Task {
	b := newTextBuilder()
	b.raw("speech recognizer nightly benchmarks\n\n")
	rows := []struct{ test, acc, lat string }{
		{"wsj-eval92", "95.2", "120"}, {"librispeech-clean", "97.8", "95"},
		{"librispeech-other", "91.4", "150"}, {"callhome", "83.6", "210"},
		{"tedlium", "89.9", "132"}, {"switchboard", "86.1", "178"},
	}
	for _, r := range rows {
		b.field("test", r.test)
		b.raw(": accuracy=").field("acc", r.acc)
		b.raw("% latency=").field("lat", r.lat)
		b.raw("ms\n")
	}
	return b.task("speechbench", `Struct(Test: Seq([test] String), Accuracy: Seq([acc] Float), Latency: Seq([lat] Int))`)
}

func textTechFest() *bench.Task {
	b := newTextBuilder()
	b.raw("TechFest demo schedule\n\n")
	rows := []struct{ time, title, hall string }{
		{"10:00", "FlashFill for everyone", "3"},
		{"10:45", "Sketching circuits", "1"},
		{"11:30", "Probabilistic programs", "2"},
		{"13:15", "Live programming demos", "3"},
		{"14:00", "Verified kernels", "4"},
		{"15:30", "End-user data wrangling", "1"},
	}
	for _, r := range rows {
		b.field("time", r.time)
		b.raw(" | ").field("title", r.title)
		b.raw(" | Hall ").field("hall", r.hall)
		b.raw("\n")
	}
	return b.task("techfest", `Struct(Time: Seq([time] String), Title: Seq([title] String), Hall: Seq([hall] Int))`)
}

func textUCLAFaculty() *bench.Task {
	b := newTextBuilder()
	b.raw("faculty directory, computer science\n\n")
	rows := []struct{ name, area, email string }{
		{"Jane Doe", "Programming Languages", "jdoe"},
		{"Raj Mehta", "Databases", "rmehta"},
		{"Sofia Ortiz", "Machine Learning", "sortiz"},
		{"Tom Nakamura", "Systems", "tnakamura"},
		{"Lena Fischer", "Theory", "lfischer"},
	}
	for _, r := range rows {
		b.raw("Prof. ").field("name", r.name)
		b.raw(" (").field("area", r.area)
		b.raw(") <").field("email", r.email)
		b.raw("@cs.ucla.edu>\n")
	}
	return b.task("ucla-faculty", `Struct(Name: Seq([name] String), Area: Seq([area] String), Email: Seq([email] String))`)
}

func textUsers() *bench.Task {
	b := newTextBuilder()
	rows := []struct{ user, uid, gecos, home string }{
		{"alice", "1001", "Alice Brown", "/home/alice"},
		{"bob", "1002", "Bob Jones", "/home/bob"},
		{"carol", "1003", "Carol Wu", "/home/carol"},
		{"dan", "1004", "Dan Ortiz", "/home/dan"},
		{"erin", "1005", "Erin Kim", "/home/erin"},
		{"frank", "1006", "Frank Hall", "/home/frank"},
	}
	for _, r := range rows {
		b.begin("rec")
		b.field("user", r.user)
		b.raw(":x:").field("uid", r.uid)
		b.rawf(":100:%s:", r.gecos)
		b.field("home", r.home)
		b.raw(":/bin/bash")
		b.end("rec")
		b.raw("\n")
	}
	return b.task("users", `Seq([rec] Struct(User: [user] String, UID: [uid] Int, Home: [home] String))`)
}
