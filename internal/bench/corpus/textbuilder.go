package corpus

import (
	"fmt"

	"flashextract/internal/bench"
	"flashextract/internal/region"
	"flashextract/internal/schema"
	"flashextract/internal/textlang"
)

// textBuilder assembles a text document while recording the golden
// regions of each field color.
type textBuilder struct {
	buf   []byte
	marks map[string][][2]int
	open  map[string][]int
}

func newTextBuilder() *textBuilder {
	return &textBuilder{marks: map[string][][2]int{}, open: map[string][]int{}}
}

// raw appends unannotated text.
func (b *textBuilder) raw(s string) *textBuilder {
	b.buf = append(b.buf, s...)
	return b
}

// rawf appends formatted unannotated text.
func (b *textBuilder) rawf(format string, args ...any) *textBuilder {
	return b.raw(fmt.Sprintf(format, args...))
}

// field appends s and records it as a golden region of the color.
func (b *textBuilder) field(color, s string) *textBuilder {
	start := len(b.buf)
	b.buf = append(b.buf, s...)
	b.marks[color] = append(b.marks[color], [2]int{start, len(b.buf)})
	return b
}

// begin opens a golden region of the color at the current position.
func (b *textBuilder) begin(color string) *textBuilder {
	b.open[color] = append(b.open[color], len(b.buf))
	return b
}

// end closes the innermost open region of the color.
func (b *textBuilder) end(color string) *textBuilder {
	stack := b.open[color]
	if len(stack) == 0 {
		panic("corpus: end without begin for color " + color)
	}
	start := stack[len(stack)-1]
	b.open[color] = stack[:len(stack)-1]
	b.marks[color] = append(b.marks[color], [2]int{start, len(b.buf)})
	return b
}

// task finalizes the document into a benchmark task.
func (b *textBuilder) task(name, schemaSrc string) *bench.Task {
	for color, stack := range b.open {
		if len(stack) > 0 {
			panic("corpus: unclosed region for color " + color)
		}
	}
	m := schema.MustParse(schemaSrc)
	doc := textlang.NewDocument(string(b.buf))
	golden := map[string][]region.Region{}
	for color, spans := range b.marks {
		if m.FieldByColor(color) == nil {
			panic("corpus: golden color " + color + " not in schema for " + name)
		}
		var rs []region.Region
		for _, sp := range spans {
			rs = append(rs, doc.Region(sp[0], sp[1]))
		}
		region.Sort(rs)
		golden[color] = rs
	}
	for _, fi := range m.Fields() {
		if _, ok := golden[fi.Color()]; !ok {
			panic("corpus: no golden regions for color " + fi.Color() + " in " + name)
		}
	}
	return &bench.Task{Name: name, Domain: "text", Doc: doc, Source: string(b.buf), Schema: m, Golden: golden}
}
