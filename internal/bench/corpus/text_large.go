package corpus

import (
	"fmt"

	"flashextract/internal/bench"
	"flashextract/internal/textlang"
)

// Large returns outsized stress documents that exercise the synthesis hot
// loop at production scale. They are kept out of All() so the paper's
// Fig. 10/11 reproduction keeps its original 75-document corpus; the
// synthesis benchmarks and flashbench address them by name or via
// AllWithLarge.
func Large() []*bench.Task {
	return []*bench.Task{textHadoopXL()}
}

// AllWithLarge returns the full benchmark plus the stress documents.
func AllWithLarge() []*bench.Task {
	return append(All(), Large()...)
}

// LargestText returns the text-domain task with the longest document,
// considering both the paper corpus and the stress documents.
func LargestText() *bench.Task {
	var best *bench.Task
	bestLen := -1
	for _, t := range append(Text(), Large()...) {
		if t.Domain != "text" {
			continue
		}
		if n := textLen(t); n > bestLen {
			best, bestLen = t, n
		}
	}
	return best
}

func textLen(t *bench.Task) int {
	if d, ok := t.Doc.(*textlang.Document); ok {
		return len(d.Text)
	}
	return 0
}

// textHadoopXL scales the "hadoop" DataNode log to ~100 KB: thousands of
// records with varied levels, components, and free-text messages. The
// schema is the hadoop task's; every timestamp and every WARN message is
// golden, so ⊥-relative synthesis must learn position sequences over the
// entire document — the worst case of Fig. 11.
func textHadoopXL() *bench.Task {
	b := newTextBuilder()
	b.raw("DataNode log excerpt (extended capture)\n")
	components := []string{"dn.storage", "dn.ipc", "dn.scanner", "dn.web"}
	infoMsgs := []string{
		"Block pool registered",
		"Heartbeat sent to namenode",
		"Scanning block pool",
		"Scan finished",
		"Received block from client",
		"Deleted replica as instructed",
		"Verification succeeded for blk",
	}
	warnMsgs := []string{
		"Disk latency above threshold",
		"Replica count below target",
		"Checksum mismatch during scan",
		"Slow flush to disk detected",
		"Namenode connection retried",
	}
	// Deterministic LCG so the document (and its golden regions) is stable
	// across runs without importing math/rand.
	seed := uint64(0x5DEECE66D)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	const records = 1400
	for i := 0; i < records; i++ {
		ts := fmt.Sprintf("2013-02-%02d %02d:%02d:%02d",
			11+i/86400, (i/3600)%24, (i/60)%60, i%60)
		b.field("ts", ts)
		comp := components[next(len(components))]
		if next(4) == 0 {
			b.rawf(" %s WARN: ", comp)
			b.field("warnmsg", warnMsgs[next(len(warnMsgs))])
		} else {
			b.rawf(" %s INFO: ", comp)
			b.raw(infoMsgs[next(len(infoMsgs))])
		}
		b.raw("\n")
	}
	return b.task("hadoop-xl", `Struct(Stamps: Seq([ts] String), Warnings: Seq([warnmsg] String))`)
}
