package corpus

import (
	"fmt"
	"strings"

	"flashextract/internal/bench"
	"flashextract/internal/htmldom"
	"flashextract/internal/region"
	"flashextract/internal/schema"
	"flashextract/internal/weblang"
)

// webProduct is one listing entry of a synthetic e-commerce page.
type webProduct struct {
	name  string
	price string // the numeric part
}

// siteCfg parameterizes a page layout; each benchmark site varies the
// DOM structure the way the SXPath benchmark's 25 real sites do.
type siteCfg struct {
	name     string
	products []webProduct
	// layout
	containerTag, containerClass string
	itemTag, itemClass           string
	nameTag, nameClass           string
	priceTag, priceClass         string
	pricePrefix, priceSuffix     string
	// wrapItems adds an extra wrapper element around every item.
	wrapItems bool
	// noiseAd inserts an ad element (distinct class) among the items.
	noiseAd bool
	// table renders a class-less table layout.
	table bool
}

// webSchema is the four-field task of the webpage evaluation: the product
// info region, the product name element, the price element, and the price
// number within it.
const webSchema = `Seq([prod] Struct(
	Name: [name] String,
	PriceBox: [priceel] Struct(Value: [pricenum] Float)))`

// buildSite renders a site config into HTML and computes the golden
// annotations from the parsed DOM.
func buildSite(cfg siteCfg) *bench.Task {
	var b strings.Builder
	b.WriteString("<html><head><title>" + cfg.name + "</title></head><body>\n")
	b.WriteString(`<div class="nav"><a href="/">home</a><a href="/deals">deals</a></div>` + "\n")
	if cfg.table {
		b.WriteString("<table>\n")
		for _, p := range cfg.products {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s%s%s</td></tr>\n",
				p.name, cfg.pricePrefix, p.price, cfg.priceSuffix)
		}
		b.WriteString("</table>\n")
	} else {
		fmt.Fprintf(&b, `<%s class="%s">`+"\n", cfg.containerTag, cfg.containerClass)
		for i, p := range cfg.products {
			if cfg.noiseAd && i == 1 {
				fmt.Fprintf(&b, `<%s class="sponsored"><span class="%s">Great deals inside!</span></%s>`+"\n",
					cfg.itemTag, cfg.nameClass, cfg.itemTag)
			}
			if cfg.wrapItems {
				b.WriteString("<div>")
			}
			fmt.Fprintf(&b, `<%s class="%s"><%s class="%s">%s</%s><%s class="%s">%s%s%s</%s></%s>`,
				cfg.itemTag, cfg.itemClass,
				cfg.nameTag, cfg.nameClass, p.name, cfg.nameTag,
				cfg.priceTag, cfg.priceClass, cfg.pricePrefix, p.price, cfg.priceSuffix, cfg.priceTag,
				cfg.itemTag)
			if cfg.wrapItems {
				b.WriteString("</div>")
			}
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "</%s>\n", cfg.containerTag)
	}
	b.WriteString(`<div class="footer">contact us</div>` + "\n</body></html>\n")

	doc := weblang.MustNewDocument(b.String())
	m := schema.MustParse(webSchema)
	golden := map[string][]region.Region{}

	var items, names, prices []*htmldom.Node
	if cfg.table {
		items = doc.Root.FindAll(func(n *htmldom.Node) bool { return n.Tag == "tr" })
		for _, tr := range items {
			tds := tr.ChildElements()
			names = append(names, tds[0])
			prices = append(prices, tds[1])
		}
	} else {
		items = doc.Root.FindAll(func(n *htmldom.Node) bool {
			return n.Tag == cfg.itemTag && n.HasClass(cfg.itemClass)
		})
		for _, it := range items {
			names = append(names, it.Find(func(n *htmldom.Node) bool {
				return n.Tag == cfg.nameTag && n.HasClass(cfg.nameClass)
			}))
			prices = append(prices, it.Find(func(n *htmldom.Node) bool {
				return n.Tag == cfg.priceTag && n.HasClass(cfg.priceClass)
			}))
		}
	}
	if len(items) != len(cfg.products) {
		panic("corpus: site " + cfg.name + " produced wrong item count")
	}
	for i := range items {
		golden["prod"] = append(golden["prod"], doc.NodeOf(items[i]))
		golden["name"] = append(golden["name"], doc.NodeOf(names[i]))
		golden["priceel"] = append(golden["priceel"], doc.NodeOf(prices[i]))
		text := prices[i].TextContent()
		rel := strings.Index(text, cfg.products[i].price)
		if rel < 0 {
			panic("corpus: price number not found in " + cfg.name)
		}
		start := prices[i].TextStart + rel
		golden["pricenum"] = append(golden["pricenum"],
			weblang.SpanRegion{Doc: doc, Start: start, End: start + len(cfg.products[i].price)})
	}
	for color, rs := range golden {
		region.Sort(rs)
		golden[color] = rs
	}
	return &bench.Task{Name: cfg.name, Domain: "web", Doc: doc, Source: b.String(), Schema: m, Golden: golden}
}

// defaultProducts gives each site its own catalog.
func catalog(seed int, n int) []webProduct {
	adjectives := []string{"Compact", "Deluxe", "Vintage", "Wireless", "Portable", "Classic", "Rugged", "Slim"}
	nouns := []string{"Camera", "Keyboard", "Blender", "Lamp", "Speaker", "Backpack", "Monitor", "Kettle"}
	out := make([]webProduct, n)
	for i := 0; i < n; i++ {
		a := adjectives[(seed+i*3)%len(adjectives)]
		o := nouns[(seed*2+i)%len(nouns)]
		price := fmt.Sprintf("%d.%02d", 9+(seed*7+i*13)%290, (seed*11+i*29)%100)
		out[i] = webProduct{name: fmt.Sprintf("%s %s %d", a, o, 100+seed*10+i), price: price}
	}
	return out
}

// webConfigs lists the 25 site layouts (without catalogs).
func webConfigs() []siteCfg {
	return []siteCfg{
		{name: "abt", containerTag: "div", containerClass: "results", itemTag: "div", itemClass: "item",
			nameTag: "h2", nameClass: "title", priceTag: "span", priceClass: "price",
			pricePrefix: "$", priceSuffix: ""},
		{name: "amazon", containerTag: "div", containerClass: "s-results", itemTag: "div", itemClass: "s-result",
			nameTag: "a", nameClass: "a-link", priceTag: "span", priceClass: "a-price",
			pricePrefix: "$", priceSuffix: " + shipping", noiseAd: true},
		{name: "apple", containerTag: "section", containerClass: "grid", itemTag: "article", itemClass: "tile",
			nameTag: "h3", nameClass: "tile-name", priceTag: "div", priceClass: "tile-price",
			pricePrefix: "From $", priceSuffix: ""},
		{name: "barnes", containerTag: "ul", containerClass: "books", itemTag: "li", itemClass: "book",
			nameTag: "span", nameClass: "book-title", priceTag: "em", priceClass: "book-price",
			pricePrefix: "", priceSuffix: " USD"},
		{name: "bestbuy", containerTag: "div", containerClass: "sku-list", itemTag: "div", itemClass: "sku-item",
			nameTag: "h4", nameClass: "sku-header", priceTag: "div", priceClass: "priceView",
			pricePrefix: "Your price: $", priceSuffix: ""},
		{name: "bigtray", table: true, pricePrefix: "$", priceSuffix: " ea"},
		{name: "bol", containerTag: "div", containerClass: "list", itemTag: "div", itemClass: "product",
			nameTag: "a", nameClass: "product-title", priceTag: "span", priceClass: "promo-price",
			pricePrefix: "", priceSuffix: " euro", wrapItems: true},
		{name: "buy", containerTag: "ol", containerClass: "offers", itemTag: "li", itemClass: "offer",
			nameTag: "b", nameClass: "offer-name", priceTag: "span", priceClass: "offer-price",
			pricePrefix: "Sale: $", priceSuffix: " (incl. tax)"},
		{name: "cameraword", containerTag: "div", containerClass: "cams", itemTag: "div", itemClass: "cam",
			nameTag: "h2", nameClass: "cam-name", priceTag: "p", priceClass: "cam-price",
			pricePrefix: "USD ", priceSuffix: ""},
		{name: "cnet", containerTag: "div", containerClass: "reviews", itemTag: "section", itemClass: "review",
			nameTag: "h3", nameClass: "review-title", priceTag: "span", priceClass: "review-price",
			pricePrefix: "$", priceSuffix: " at retail", noiseAd: true},
		{name: "cooking-bw", containerTag: "ul", containerClass: "tools", itemTag: "li", itemClass: "tool",
			nameTag: "span", nameClass: "tool-name", priceTag: "span", priceClass: "tool-price",
			pricePrefix: "only $", priceSuffix: ""},
		{name: "dealtime", containerTag: "div", containerClass: "deals", itemTag: "div", itemClass: "deal",
			nameTag: "a", nameClass: "deal-link", priceTag: "strong", priceClass: "deal-price",
			pricePrefix: "$", priceSuffix: ""},
		{name: "drugstore", containerTag: "div", containerClass: "aisle", itemTag: "div", itemClass: "shelf-item",
			nameTag: "span", nameClass: "drug-name", priceTag: "span", priceClass: "drug-price",
			pricePrefix: "$", priceSuffix: "/pack", wrapItems: true},
		{name: "ebay", containerTag: "ul", containerClass: "srp-list", itemTag: "li", itemClass: "s-item",
			nameTag: "h3", nameClass: "s-item-title", priceTag: "span", priceClass: "s-item-price",
			pricePrefix: "US $", priceSuffix: ""},
		{name: "mgzoutlet", containerTag: "div", containerClass: "issues", itemTag: "div", itemClass: "issue",
			nameTag: "h2", nameClass: "issue-name", priceTag: "div", priceClass: "issue-price",
			pricePrefix: "", priceSuffix: " per year"},
		{name: "mediaworld", containerTag: "div", containerClass: "catalogo", itemTag: "article", itemClass: "prodotto",
			nameTag: "h3", nameClass: "nome", priceTag: "span", priceClass: "prezzo",
			pricePrefix: "EUR ", priceSuffix: ""},
		{name: "nthbutsw", containerTag: "div", containerClass: "sw-list", itemTag: "div", itemClass: "sw",
			nameTag: "a", nameClass: "sw-name", priceTag: "span", priceClass: "sw-price",
			pricePrefix: "$", priceSuffix: " download"},
		{name: "powells", containerTag: "ul", containerClass: "shelf", itemTag: "li", itemClass: "volume",
			nameTag: "em", nameClass: "volume-title", priceTag: "span", priceClass: "volume-price",
			pricePrefix: "List: $", priceSuffix: "", noiseAd: true},
		{name: "googlepdct", containerTag: "div", containerClass: "pla", itemTag: "div", itemClass: "pla-unit",
			nameTag: "span", nameClass: "pla-title", priceTag: "span", priceClass: "pla-price",
			pricePrefix: "$", priceSuffix: ""},
		{name: "yahooshop", containerTag: "div", containerClass: "shopping", itemTag: "div", itemClass: "hit",
			nameTag: "h4", nameClass: "hit-title", priceTag: "div", priceClass: "hit-price",
			pricePrefix: "from $", priceSuffix: " at 3 stores"},
		{name: "shopping", containerTag: "div", containerClass: "grid-list", itemTag: "div", itemClass: "grid-cell",
			nameTag: "a", nameClass: "cell-name", priceTag: "span", priceClass: "cell-price",
			pricePrefix: "$", priceSuffix: "", wrapItems: true},
		{name: "shopzilla", containerTag: "ol", containerClass: "zilla", itemTag: "li", itemClass: "zitem",
			nameTag: "b", nameClass: "zname", priceTag: "i", priceClass: "zprice",
			pricePrefix: "as low as $", priceSuffix: ""},
		{name: "target", containerTag: "div", containerClass: "plp", itemTag: "div", itemClass: "plp-card",
			nameTag: "h3", nameClass: "card-title", priceTag: "span", priceClass: "card-price",
			pricePrefix: "$", priceSuffix: " w/ RedCard"},
		{name: "tigerdirect", table: true, pricePrefix: "Now: $", priceSuffix: "!"},
		{name: "venere", containerTag: "div", containerClass: "hotels", itemTag: "div", itemClass: "hotel",
			nameTag: "h2", nameClass: "hotel-name", priceTag: "span", priceClass: "hotel-rate",
			pricePrefix: "", priceSuffix: " per night"},
	}
}

// Web returns the 25 webpage benchmark tasks (named after Fig. 10).
func Web() []*bench.Task {
	base := webConfigs()
	out := make([]*bench.Task, len(base))
	for i, cfg := range base {
		cfg.products = catalog(i+1, 4+i%4)
		out[i] = buildSite(cfg)
	}
	return out
}

// WebTransfer returns train/test task pairs per site: the same layout with
// different catalogs, for the §2 transfer evaluation.
func WebTransfer() [][2]*bench.Task {
	base := webConfigs()
	out := make([][2]*bench.Task, len(base))
	for i, cfg := range base {
		train := cfg
		train.products = catalog(i+1, 4+i%4)
		test := cfg
		test.products = catalog(i+41, 5+i%3)
		out[i] = [2]*bench.Task{buildSite(train), buildSite(test)}
	}
	return out
}
