package bench_test

import (
	"context"
	"testing"

	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
	"flashextract/internal/engine"
	"flashextract/internal/metrics"
	"flashextract/internal/region"
)

// TestDifferentialPruning is the acceptance harness of abstraction-guided
// candidate pruning: for every corpus document (plus the hadoop-xl stress
// document), a session with pruning enabled must learn the same program and
// infer the same highlighting, region for region, as a forced-unpruned
// reference session on every field. The abstraction is a sound
// over-approximation, so pruning may only skip candidates the concrete
// check would reject anyway — any divergence here means a consistent
// candidate was pruned or ranking shifted.
func TestDifferentialPruning(t *testing.T) {
	for _, task := range corpusTasks(t) {
		t.Run(task.Name, func(t *testing.T) {
			plain := engine.NewSession(task.Doc, task.Schema)
			plain.SetPruning(false)
			pruned := engine.NewSession(task.Doc, task.Schema)
			pruned.SetPruning(true)
			for _, fi := range task.Schema.Fields() {
				color := fi.Color()
				golden := append([]region.Region(nil), task.Golden[color]...)
				if len(golden) == 0 {
					continue
				}
				region.Sort(golden)
				if len(golden) > 2 {
					golden = golden[:2]
				}
				for _, r := range golden {
					if err := plain.AddPositive(color, r); err != nil {
						t.Fatalf("field %s: %v", color, err)
					}
					if err := pruned.AddPositive(color, r); err != nil {
						t.Fatalf("field %s: %v", color, err)
					}
				}
				pfp, pout, perr := plain.Learn(color)
				qfp, qout, qerr := pruned.Learn(color)
				if (perr == nil) != (qerr == nil) || (perr != nil && perr.Error() != qerr.Error()) {
					t.Fatalf("field %s: unpruned err %v, pruned err %v", color, perr, qerr)
				}
				if perr != nil {
					continue
				}
				if got, want := fieldProgramString(qfp), fieldProgramString(pfp); got != want {
					t.Errorf("field %s program:\n  unpruned: %s\n  pruned:   %s", color, want, got)
				}
				if len(pout) != len(qout) {
					t.Errorf("field %s: unpruned inferred %d regions, pruned %d", color, len(pout), len(qout))
					continue
				}
				for i := range pout {
					if pout[i] != qout[i] {
						t.Errorf("field %s region %d: unpruned %v, pruned %v", color, i, pout[i], qout[i])
					}
				}
			}
		})
	}
}

// exploredOnTask runs one ⊥-relative synthesis pass over every field of the
// task with abstraction-guided pruning forced on or off and returns the
// candidates-explored and candidates-pruned counter totals (the quantities
// `make bench-synth` publishes to BENCH_synth.json).
func exploredOnTask(t *testing.T, task *bench.Task, pruning bool) (explored, pruned int64) {
	t.Helper()
	prev := engine.DefaultPruning
	engine.DefaultPruning = pruning
	defer func() { engine.DefaultPruning = prev }()
	reg := metrics.NewRegistry()
	ctx := metrics.Into(context.Background(), reg)
	for _, fi := range task.Schema.Fields() {
		golden := task.Golden[fi.Color()]
		if len(golden) == 0 {
			continue
		}
		pos := golden
		if len(pos) > 2 {
			pos = pos[:2]
		}
		_, _, err := engine.SynthesizeFieldProgramCtx(
			ctx, task.Doc, task.Schema, engine.Highlighting{}, fi,
			append([]region.Region(nil), pos...), nil, map[string]bool{})
		if err != nil {
			t.Fatalf("pruning=%v field %s: %v", pruning, fi.Color(), err)
		}
	}
	return reg.Counter(metrics.CandidatesExplored), reg.Counter(metrics.CandidatesPruned)
}

// TestPruningExploredDropOnStressDocument is the quantitative gate: on the
// hadoop-xl stress document, abstraction-guided pruning must cut the number
// of concretely executed candidates by at least 30% relative to the
// unpruned reference pass, with abstract rejections actually recorded — a
// zero pruned counter would mean the drop came from somewhere else and the
// differential is vacuous.
func TestPruningExploredDropOnStressDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("stress-document counting is skipped in -short runs")
	}
	xl := corpus.ByName("hadoop-xl")
	if xl == nil {
		t.Fatal("hadoop-xl stress document missing from corpus")
	}
	unpruned, _ := exploredOnTask(t, xl, false)
	explored, rejected := exploredOnTask(t, xl, true)
	if unpruned == 0 {
		t.Fatal("unpruned pass recorded no explored candidates; the counter plumbing is broken")
	}
	if rejected == 0 {
		t.Error("pruned pass recorded no abstract rejections")
	}
	drop := 1 - float64(explored)/float64(unpruned)
	t.Logf("hadoop-xl: explored %d unpruned, %d pruned (%d abstract rejections): %.1f%% drop",
		unpruned, explored, rejected, 100*drop)
	if drop < 0.30 {
		t.Errorf("explored drop %.1f%% < 30%% (unpruned %d, pruned %d)", 100*drop, unpruned, explored)
	}
}
