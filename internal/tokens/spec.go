package tokens

import (
	"encoding/json"
	"fmt"
)

// TokenSpec is the serializable form of a token: a standard token
// referenced by name, or a dynamic literal by value.
type TokenSpec struct {
	Kind  string `json:"kind"` // "std" or "lit"
	Value string `json:"value"`
}

// Spec serializes a token.
func (t Token) Spec() TokenSpec {
	if t.IsDynamic() {
		return TokenSpec{Kind: "lit", Value: t.lit}
	}
	return TokenSpec{Kind: "std", Value: t.Name}
}

var standardByName = func() map[string]Token {
	out := make(map[string]Token, len(Standard))
	for _, t := range Standard {
		out[t.Name] = t
	}
	return out
}()

// FromSpec reconstructs a token.
func FromSpec(s TokenSpec) (Token, error) {
	switch s.Kind {
	case "lit":
		return Literal(s.Value), nil
	case "std":
		t, ok := standardByName[s.Value]
		if !ok {
			return Token{}, fmt.Errorf("tokens: unknown standard token %q", s.Value)
		}
		return t, nil
	default:
		return Token{}, fmt.Errorf("tokens: unknown token kind %q", s.Kind)
	}
}

// RegexSpec is the serializable form of a regex.
type RegexSpec []TokenSpec

// Spec serializes a regex.
func (r Regex) Spec() RegexSpec {
	out := make(RegexSpec, len(r))
	for i, t := range r {
		out[i] = t.Spec()
	}
	return out
}

// RegexFromSpec reconstructs a regex.
func RegexFromSpec(s RegexSpec) (Regex, error) {
	out := make(Regex, len(s))
	for i, ts := range s {
		t, err := FromSpec(ts)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// AttrSpec is the serializable form of a position attribute.
type AttrSpec struct {
	Kind  string    `json:"kind"` // "abs" or "reg"
	K     int       `json:"k"`
	Left  RegexSpec `json:"left,omitempty"`
	Right RegexSpec `json:"right,omitempty"`
}

// SpecOf serializes a position attribute.
func SpecOf(a Attr) (AttrSpec, error) {
	switch v := a.(type) {
	case AbsPos:
		return AttrSpec{Kind: "abs", K: v.K}, nil
	case RegPos:
		return AttrSpec{Kind: "reg", K: v.K, Left: v.RR.Left.Spec(), Right: v.RR.Right.Spec()}, nil
	default:
		return AttrSpec{}, fmt.Errorf("tokens: unknown attribute type %T", a)
	}
}

// AttrFromSpec reconstructs a position attribute.
func AttrFromSpec(s AttrSpec) (Attr, error) {
	switch s.Kind {
	case "abs":
		return AbsPos{K: s.K}, nil
	case "reg":
		left, err := RegexFromSpec(s.Left)
		if err != nil {
			return nil, err
		}
		right, err := RegexFromSpec(s.Right)
		if err != nil {
			return nil, err
		}
		return RegPos{RR: RegexPair{Left: left, Right: right}, K: s.K}, nil
	default:
		return nil, fmt.Errorf("tokens: unknown attribute kind %q", s.Kind)
	}
}

// MarshalAttr renders a position attribute as a JSON string, for embedding
// in program spec attributes.
func MarshalAttr(a Attr) (string, error) {
	spec, err := SpecOf(a)
	if err != nil {
		return "", err
	}
	b, err := json.Marshal(spec)
	return string(b), err
}

// UnmarshalAttr parses a position attribute from its JSON string form.
func UnmarshalAttr(s string) (Attr, error) {
	var spec AttrSpec
	if err := json.Unmarshal([]byte(s), &spec); err != nil {
		return nil, err
	}
	return AttrFromSpec(spec)
}

// MarshalRegexPair renders a regex pair as a JSON string.
func MarshalRegexPair(rr RegexPair) (string, error) {
	spec := struct {
		Left  RegexSpec `json:"left,omitempty"`
		Right RegexSpec `json:"right,omitempty"`
	}{rr.Left.Spec(), rr.Right.Spec()}
	b, err := json.Marshal(spec)
	return string(b), err
}

// UnmarshalRegexPair parses a regex pair from its JSON string form.
func UnmarshalRegexPair(s string) (RegexPair, error) {
	var spec struct {
		Left  RegexSpec `json:"left"`
		Right RegexSpec `json:"right"`
	}
	if err := json.Unmarshal([]byte(s), &spec); err != nil {
		return RegexPair{}, err
	}
	left, err := RegexFromSpec(spec.Left)
	if err != nil {
		return RegexPair{}, err
	}
	right, err := RegexFromSpec(spec.Right)
	if err != nil {
		return RegexPair{}, err
	}
	return RegexPair{Left: left, Right: right}, nil
}
