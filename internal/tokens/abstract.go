package tokens

// Abstract match-count summaries over the evaluation cache: cheap sound
// bounds on how many positions a regex pair can match in a range, used by
// the substrate abstraction transformers (see internal/abstract) to reject
// candidate programs before concrete execution.

// PairFingerprint returns the cache fingerprint of a regex pair. Substrate
// abstraction transformers key refinement facts (exact match counts learned
// from spurious survivors) on (range, fingerprint); it is the same hash the
// cache's own position-sequence memo uses.
func PairFingerprint(rr RegexPair) uint64 { return pairFingerprint(rr) }

// PairCountBounds returns a sound bound [cntLo, cntHi] on the number of
// positions rr matches within text[lo:hi], and whether the bound is exact.
//
// When the pair's position sequence is already memoized the count is exact
// and free. Otherwise the bound rides the per-token boundary cache: every
// match position must be a right-maximal end of the left regex's last token
// AND a left-maximal start of the right regex's first token (exactly the
// candidate lists the concrete Positions scan verifies), so the smaller
// boundary list's length is an upper bound. Boundary scans are O(range) per
// token and memoized — the same scans the concrete evaluation of the
// candidate would perform.
func (c *Cache) PairCountBounds(lo, hi int, rr RegexPair) (cntLo, cntHi int, exact bool) {
	if len(rr.Left) == 0 && len(rr.Right) == 0 {
		// Positions returns nil for the empty pair.
		return 0, 0, true
	}
	key := seqKey{lo: lo, hi: hi, h: pairFingerprint(rr)}
	if ps, ok := c.seqGet(key, rr); ok {
		return len(ps), len(ps), true
	}
	ub := -1
	if len(rr.Left) > 0 {
		_, ends := c.Boundaries(lo, hi, rr.Left[len(rr.Left)-1])
		ub = len(ends)
	}
	if len(rr.Right) > 0 {
		starts, _ := c.Boundaries(lo, hi, rr.Right[0])
		if ub < 0 || len(starts) < ub {
			ub = len(starts)
		}
	}
	if ub < 0 {
		ub = 0
	}
	return 0, ub, false
}
