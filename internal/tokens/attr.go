package tokens

import (
	"fmt"
	"sort"
	"strings"
)

// Attr is a position attribute p (§5.1): a program computing a position in
// a string. It is either an absolute position or the k-th element of a
// regex-pair position sequence.
type Attr interface {
	// Eval returns the position identified by the attribute in s, or an
	// error when the attribute has no match.
	Eval(s string) (int, error)
	String() string
	// Cost is the attribute's heuristic ranking score (lower is better);
	// it feeds the program-cost ranking of the core framework.
	Cost() int
}

// AbsPos is the absolute position attribute AbsPos(k): position k when
// k ≥ 0, or len(s)+k+1 when k < 0 (so AbsPos(-1) is the end of s).
type AbsPos struct {
	K int
}

// Eval resolves the absolute position in s.
func (a AbsPos) Eval(s string) (int, error) {
	k := a.K
	if k < 0 {
		k = len(s) + k + 1
	}
	if k < 0 || k > len(s) {
		return 0, fmt.Errorf("tokens: AbsPos(%d) out of range for length %d", a.K, len(s))
	}
	return k, nil
}

func (a AbsPos) String() string { return fmt.Sprintf("AbsPos(%d)", a.K) }

// Cost ranks the natural boundaries AbsPos(0) and AbsPos(-1) best and
// other absolute positions worst (they almost never generalize).
func (a AbsPos) Cost() int {
	if a.K == 0 || a.K == -1 {
		return 0
	}
	k := a.K
	if k < 0 {
		k = -k
	}
	return 100 + k
}

// RegPos is the regex position attribute RegPos(rr, k): the k-th element
// (1-based; negative counts from the right) of the position sequence
// identified by the regex pair rr.
type RegPos struct {
	RR RegexPair
	K  int
}

// Eval resolves the k-th regex-pair position in s. It scans lazily from
// the appropriate end of the string and stops at the k-th match — map
// functions evaluate attributes once per sequence element, so
// materializing the full position sequence would make mapping quadratic
// in document size.
func (a RegPos) Eval(s string) (int, error) {
	if len(a.RR.Left) == 0 && len(a.RR.Right) == 0 {
		return 0, errNoRegPosMatch(a)
	}
	matches := func(k int) bool {
		return a.RR.Left.MatchSuffix(s, k) >= 0 && a.RR.Right.MatchPrefix(s, k) >= 0
	}
	count := 0
	switch {
	case a.K > 0:
		for k := 0; k <= len(s); k++ {
			if matches(k) {
				count++
				if count == a.K {
					return k, nil
				}
			}
		}
	case a.K < 0:
		for k := len(s); k >= 0; k-- {
			if matches(k) {
				count++
				if count == -a.K {
					return k, nil
				}
			}
		}
	}
	return 0, errNoRegPosMatch(a)
}

func errNoRegPosMatch(a RegPos) error {
	return fmt.Errorf("tokens: RegPos%s[%d] has no match", a.RR, a.K)
}

func (a RegPos) String() string { return fmt.Sprintf("RegPos(%s, %d)", a.RR, a.K) }

// Cost prefers short regex contexts and positions near the ends of the
// match sequence.
func (a RegPos) Cost() int {
	k := a.K
	if k < 0 {
		k = -k
	}
	return a.RR.Cost() + 2*(k-1)
}

// maxSeqsPerSide bounds the token-sequence enumeration per side of a
// position during learning.
const maxSeqsPerSide = 48

// SeqsEndingAt enumerates token sequences (length ≤ MaxRegexTokens,
// including ε) matching a suffix ending at position k of s, shortest
// first.
func SeqsEndingAt(s string, k int, toks []Token) []Regex {
	out := []Regex{{}}
	frontier := []Regex{{}}
	ends := map[string]int{"": k} // regex key → leftmost end after matching
	key := func(r Regex) string {
		str := ""
		for _, t := range r {
			str += t.Name + "|"
		}
		return str
	}
	for depth := 0; depth < MaxRegexTokens; depth++ {
		var next []Regex
		for _, r := range frontier {
			end := ends[key(r)]
			for _, t := range toks {
				n := t.MatchSuffix(s, end)
				if n <= 0 {
					continue
				}
				nr := append(Regex{t}, r...)
				if len(out) >= maxSeqsPerSide {
					return out
				}
				out = append(out, nr)
				next = append(next, nr)
				ends[key(nr)] = end - n
			}
		}
		frontier = next
	}
	return out
}

// SeqsStartingAt enumerates token sequences (length ≤ MaxRegexTokens,
// including ε) matching a prefix starting at position k of s, shortest
// first.
func SeqsStartingAt(s string, k int, toks []Token) []Regex {
	out := []Regex{{}}
	type item struct {
		r     Regex
		start int
	}
	frontier := []item{{Regex{}, k}}
	for depth := 0; depth < MaxRegexTokens; depth++ {
		var next []item
		for _, it := range frontier {
			for _, t := range toks {
				n := t.MatchPrefix(s, it.start)
				if n <= 0 {
					continue
				}
				nr := append(append(Regex{}, it.r...), t)
				if len(out) >= maxSeqsPerSide {
					return out
				}
				out = append(out, nr)
				next = append(next, item{nr, it.start + n})
			}
		}
		frontier = next
	}
	return out
}

// PosExample is an example for position-attribute learning: the position K
// within the string S.
type PosExample struct {
	S string
	K int
	// Ix optionally carries a prebuilt boundary index of S (see
	// Cache.IndexFor); when nil the learner builds one itself. Callers that
	// learn repeatedly over the same document share the index across calls.
	Ix *Index
}

// maxAttrCandidates bounds the number of candidate attributes generated
// from the first example before cross-example verification.
const maxAttrCandidates = 1500

// LearnAttrs learns the ranked set of position attributes consistent with
// all examples, using the given token set (standard plus dynamic tokens).
// It generates candidates from the first example and verifies them on the
// rest, as in prior work on FlashFill-style position learning.
func LearnAttrs(exs []PosExample, toks []Token) []Attr {
	return LearnAttrsStop(exs, toks, nil)
}

// LearnAttrsStop is LearnAttrs with a cooperative stop callback, polled
// between candidates: when stop returns true, the attributes verified so
// far are returned. Candidate generation and verification both scan the
// example strings, so this is where a synthesis deadline must be able to
// interrupt position learning on large documents.
func LearnAttrsStop(exs []PosExample, toks []Token, stop func() bool) []Attr {
	if len(exs) == 0 {
		return nil
	}
	first := exs[0]
	var cands []Attr
	cands = append(cands, AbsPos{K: first.K}, AbsPos{K: first.K - len(first.S) - 1})

	indexes := make([]*Index, len(exs))
	for i, ex := range exs {
		if ex.Ix != nil {
			indexes[i] = ex.Ix
		} else {
			indexes[i] = NewIndex(ex.S, toks)
		}
	}
	lefts := SeqsEndingAt(first.S, first.K, toks)
	rights := SeqsStartingAt(first.S, first.K, toks)
	seen := map[uint64]bool{}
gen:
	for _, r1 := range lefts {
		for _, r2 := range rights {
			if stop != nil && stop() {
				break gen
			}
			if len(r1) == 0 && len(r2) == 0 {
				continue
			}
			rr := RegexPair{Left: r1, Right: r2}
			ps := indexes[0].Positions(rr)
			idx := indexOfInt(ps, first.K)
			if idx < 0 {
				continue
			}
			// Dedupe regex pairs yielding the same position sequence.
			sig := hashInts(ps)
			if seen[sig] {
				continue
			}
			seen[sig] = true
			cands = append(cands, RegPos{RR: rr, K: idx + 1}, RegPos{RR: rr, K: idx - len(ps)})
			if len(cands) >= maxAttrCandidates {
				break
			}
		}
		if len(cands) >= maxAttrCandidates {
			break
		}
	}

	var out []Attr
	for _, a := range cands {
		if stop != nil && stop() {
			break // keep the verified prefix
		}
		ok := true
		for i, ex := range exs {
			k, err := indexes[i].EvalAttr(a)
			if err != nil || k != ex.K {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, a)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost() < out[j].Cost() })
	return out
}

// SeqPosExample is an example for regex-pair (position sequence) learning:
// Ks are positive position instances, in order, within S.
type SeqPosExample struct {
	S  string
	Ks []int
	// Ix optionally carries a prebuilt boundary index of S, as in
	// PosExample.
	Ix *Index
}

// LearnRegexPairs learns the ranked set of regex pairs rr whose position
// sequence contains every positive position of every example. Candidates
// are generated around the first position of the first example and
// verified on everything else.
func LearnRegexPairs(exs []SeqPosExample, toks []Token) []RegexPair {
	return LearnRegexPairsStop(exs, toks, nil)
}

// LearnRegexPairsStop is LearnRegexPairs with a cooperative stop callback
// polled between candidate pairs; the pairs verified so far are returned
// when it trips.
func LearnRegexPairsStop(exs []SeqPosExample, toks []Token, stop func() bool) []RegexPair {
	var first *SeqPosExample
	for i := range exs {
		if len(exs[i].Ks) > 0 {
			first = &exs[i]
			break
		}
	}
	if first == nil {
		return nil
	}
	k0 := first.Ks[0]
	indexes := make([]*Index, len(exs))
	for i, ex := range exs {
		if ex.Ix != nil {
			indexes[i] = ex.Ix
		} else {
			indexes[i] = NewIndex(ex.S, toks)
		}
	}
	lefts := SeqsEndingAt(first.S, k0, toks)
	rights := SeqsStartingAt(first.S, k0, toks)
	var out []RegexPair
	seen := map[uint64]bool{}
pairs:
	for _, r1 := range lefts {
		for _, r2 := range rights {
			if stop != nil && stop() {
				break pairs // keep the verified prefix
			}
			if len(r1) == 0 && len(r2) == 0 {
				continue
			}
			rr := RegexPair{Left: r1, Right: r2}
			ok := true
			var firstSig uint64
			for i, ex := range exs {
				ps := indexes[i].Positions(rr)
				if i == 0 {
					firstSig = hashInts(ps)
				}
				if !containsAllInts(ps, ex.Ks) {
					ok = false
					break
				}
			}
			if !ok || seen[firstSig] {
				continue
			}
			seen[firstSig] = true
			out = append(out, rr)
			if len(out) >= maxSeqsPerSide {
				break
			}
		}
		if len(out) >= maxSeqsPerSide {
			break
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost() < out[j].Cost() })
	return out
}

// hashInts is an FNV-1a hash over an int slice, used to dedupe candidate
// position sequences cheaply.
func hashInts(xs []int) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range xs {
		v := uint64(x)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

func indexOfInt(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// containsAllInts reports whether xs (sorted ascending) contains every
// element of sub, in order.
func containsAllInts(xs, sub []int) bool {
	i := 0
	for _, x := range xs {
		if i == len(sub) {
			return true
		}
		if x == sub[i] {
			i++
		}
	}
	return i == len(sub)
}

// DiscoverDynamicTokens promotes frequently occurring literals around the
// example positions to dynamic tokens (§5.1). For every example position
// it considers the left and right context substrings of lengths 1..maxLen
// and keeps those occurring at least minOccur times in doc. To avoid
// overfitting, a literal must be at least two bytes long and contain a
// non-alphanumeric byte (dynamic tokens exist to capture delimiters such
// as `,""` or `DLZ - `, not stray content characters).
func DiscoverDynamicTokens(doc string, exs []PosExample, maxLen, minOccur, cap int) []Token {
	counts := map[string]bool{}
	var lits []string
	consider := func(lit string) {
		if len(lit) < 2 || counts[lit] {
			return
		}
		counts[lit] = true
		if !hasNonAlnum(lit) {
			return
		}
		if countOccurrences(doc, lit) >= minOccur {
			lits = append(lits, lit)
		}
	}
	for _, ex := range exs {
		for n := 1; n <= maxLen; n++ {
			if ex.K-n >= 0 {
				consider(ex.S[ex.K-n : ex.K])
			}
			if ex.K+n <= len(ex.S) {
				consider(ex.S[ex.K : ex.K+n])
			}
		}
	}
	// Longer literals are more distinctive; prefer them.
	sort.SliceStable(lits, func(i, j int) bool { return len(lits[i]) > len(lits[j]) })
	if len(lits) > cap {
		lits = lits[:cap]
	}
	out := make([]Token, len(lits))
	for i, l := range lits {
		out[i] = Literal(l)
	}
	return out
}

func hasNonAlnum(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isAlnum(s[i]) {
			return true
		}
	}
	return false
}

func countOccurrences(s, sub string) int {
	n, i := 0, 0
	for {
		j := indexFrom(s, sub, i)
		if j < 0 {
			return n
		}
		n++
		i = j + len(sub)
	}
}

func indexFrom(s, sub string, from int) int {
	if from < 0 || from > len(s) {
		return -1
	}
	j := strings.Index(s[from:], sub)
	if j < 0 {
		return -1
	}
	return from + j
}
