package tokens

// Index precomputes, for every token of a pool, the positions where the
// token matches as a prefix (run starts) and as a suffix (run ends) of a
// string. Position-sequence learning evaluates thousands of candidate
// regex pairs against the same strings; anchoring each pair on its most
// selective token's precomputed positions turns the per-pair cost from
// O(len(s)) into O(matches), which keeps synthesis interactive on large
// documents.
type Index struct {
	s   string
	pre map[string][]int
	suf map[string][]int
}

// NewIndex builds the boundary index of s for a token pool.
func NewIndex(s string, toks []Token) *Index {
	ix := &Index{s: s, pre: map[string][]int{}, suf: map[string][]int{}}
	for _, t := range toks {
		if _, done := ix.pre[t.Name]; done {
			continue
		}
		var pre, suf []int
		if t.lit != "" {
			for k := 0; k+len(t.lit) <= len(s); k++ {
				if s[k:k+len(t.lit)] == t.lit {
					pre = append(pre, k)
					suf = append(suf, k+len(t.lit))
				}
			}
		} else {
			// Class tokens match maximal runs: prefix positions are run
			// starts, suffix positions are run ends.
			k := 0
			for k < len(s) {
				if !t.class(s[k]) {
					k++
					continue
				}
				start := k
				for k < len(s) && t.class(s[k]) {
					k++
				}
				pre = append(pre, start)
				suf = append(suf, k)
			}
		}
		ix.pre[t.Name] = pre
		ix.suf[t.Name] = suf
	}
	return ix
}

// Positions returns the position sequence of rr in the indexed string,
// equivalent to rr.Positions(s) but anchored on precomputed boundaries.
func (ix *Index) Positions(rr RegexPair) []int {
	if len(rr.Left) == 0 && len(rr.Right) == 0 {
		return nil
	}
	// Anchor on whichever side has an indexed token with fewer matches.
	var cands []int
	haveAnchor := false
	if len(rr.Left) > 0 {
		if ends, ok := ix.suf[rr.Left[len(rr.Left)-1].Name]; ok {
			cands, haveAnchor = ends, true
		}
	}
	if len(rr.Right) > 0 {
		if starts, ok := ix.pre[rr.Right[0].Name]; ok {
			if !haveAnchor || len(starts) < len(cands) {
				cands, haveAnchor = starts, true
			}
		}
	}
	if !haveAnchor {
		return rr.Positions(ix.s) // token outside the pool: fall back
	}
	var out []int
	for _, k := range cands {
		if rr.Left.MatchSuffix(ix.s, k) < 0 {
			continue
		}
		if rr.Right.MatchPrefix(ix.s, k) < 0 {
			continue
		}
		out = append(out, k)
	}
	return out
}

// EvalAttr evaluates a position attribute against the indexed string,
// equivalent to a.Eval(s).
func (ix *Index) EvalAttr(a Attr) (int, error) {
	switch v := a.(type) {
	case RegPos:
		return v.evalIn(ix.Positions(v.RR))
	default:
		return a.Eval(ix.s)
	}
}

// evalIn resolves the k-th position of a precomputed sequence.
func (a RegPos) evalIn(ps []int) (int, error) {
	idx := a.K - 1
	if a.K < 0 {
		idx = len(ps) + a.K
	}
	if a.K == 0 || idx < 0 || idx >= len(ps) {
		return 0, errNoRegPosMatch(a)
	}
	return ps[idx], nil
}
