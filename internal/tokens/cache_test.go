package tokens

import (
	"math/rand"
	"testing"
)

const cacheSample = "INFO 2014-01-02 core started\nWARN 17 retries, x=3.14;\nalpha beta 42 gamma\n"

// randomText draws a string over an alphabet mixing classes, punctuation,
// and newlines so that every standard token can occur.
func randomText(rng *rand.Rand, n int) string {
	const alphabet = "abXY019 ,;:.\n\t-\""
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// randomPool draws a subset of the standard tokens plus a few literal
// tokens taken from the text itself.
func randomPool(rng *rand.Rand, text string) []Token {
	var pool []Token
	for _, t := range Standard {
		if rng.Intn(2) == 0 {
			pool = append(pool, t)
		}
	}
	for i := 0; i < 2 && len(text) > 3; i++ {
		lo := rng.Intn(len(text) - 2)
		hi := lo + 1 + rng.Intn(2)
		lit := text[lo:hi]
		if lit != "" {
			pool = append(pool, Literal(lit))
		}
	}
	if len(pool) == 0 {
		pool = append(pool, Number)
	}
	return pool
}

// randomPair draws a regex pair whose tokens come from the pool; at least
// one side is non-empty.
func randomPair(rng *rand.Rand, pool []Token) RegexPair {
	side := func() Regex {
		var r Regex
		for i := rng.Intn(3); i > 0; i-- {
			r = append(r, pool[rng.Intn(len(pool))])
		}
		return r
	}
	for {
		rr := RegexPair{Left: side(), Right: side()}
		if len(rr.Left) > 0 || len(rr.Right) > 0 {
			return rr
		}
	}
}

func equalPositions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIndexFallbackOutsidePool pins the fallback path of Index.Positions:
// a pair whose anchor tokens are outside the indexed pool must still
// return exactly rr.Positions.
func TestIndexFallbackOutsidePool(t *testing.T) {
	ix := NewIndex(cacheSample, []Token{Word}) // Number, Hyphen not indexed
	rr := RegexPair{Left: Regex{Number}, Right: Regex{Hyphen}}
	got := ix.Positions(rr)
	want := rr.Positions(cacheSample)
	if !equalPositions(got, want) {
		t.Fatalf("fallback positions = %v, want %v", got, want)
	}
	if len(want) == 0 {
		t.Fatal("test is vacuous: no number positions in sample")
	}
	// One side indexed, the other not: the indexed side anchors.
	rr = RegexPair{Left: Regex{Word}, Right: Regex{Number}}
	if got, want := ix.Positions(rr), rr.Positions(cacheSample); !equalPositions(got, want) {
		t.Fatalf("half-indexed positions = %v, want %v", got, want)
	}
}

// TestIndexPositionsMatchesRegexPair is the property test behind the
// anchored fast path: for random texts, pools, and pairs, Index.Positions
// must agree with the direct scan — both when every pair token is in the
// pool (anchored) and when the index misses tokens (fallback).
func TestIndexPositionsMatchesRegexPair(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		text := randomText(rng, 5+rng.Intn(120))
		pool := randomPool(rng, text)
		ix := NewIndex(text, pool)
		for i := 0; i < 8; i++ {
			rr := randomPair(rng, pool)
			got := ix.Positions(rr)
			want := rr.Positions(text)
			if !equalPositions(got, want) {
				t.Fatalf("text %q pool %v pair %s: index %v, direct %v", text, pool, rr, got, want)
			}
		}
		// Pairs over tokens possibly outside the pool exercise the fallback.
		outside := append(append([]Token(nil), pool...), Standard...)
		for i := 0; i < 4; i++ {
			rr := randomPair(rng, outside)
			if got, want := ix.Positions(rr), rr.Positions(text); !equalPositions(got, want) {
				t.Fatalf("text %q pair %s: index %v, direct %v", text, rr, got, want)
			}
		}
	}
}

// TestCachePositionsMatchesRegexPair checks the document-scoped cache
// against the direct scan over random subranges, twice per key to cover
// both the miss and the hit path.
func TestCachePositionsMatchesRegexPair(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		text := randomText(rng, 30+rng.Intn(150))
		c := NewCache(text)
		pool := randomPool(rng, text)
		for i := 0; i < 12; i++ {
			lo := rng.Intn(len(text))
			hi := lo + rng.Intn(len(text)-lo)
			rr := randomPair(rng, pool)
			want := rr.Positions(text[lo:hi])
			if got := c.Positions(lo, hi, rr); !equalPositions(got, want) {
				t.Fatalf("miss: text[%d:%d] pair %s: cache %v, direct %v", lo, hi, rr, got, want)
			}
			if got := c.Positions(lo, hi, rr); !equalPositions(got, want) {
				t.Fatalf("hit: text[%d:%d] pair %s: cache %v, direct %v", lo, hi, rr, got, want)
			}
		}
	}
}

// TestCacheEvalAttrMatchesEval checks EvalAttr equivalence for both
// attribute forms, including the error case.
func TestCacheEvalAttrMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	text := cacheSample
	c := NewCache(text)
	attrs := []Attr{
		AbsPos{K: 1},
		AbsPos{K: -1},
		RegPos{RR: RegexPair{Left: Regex{Number}}, K: 1},
		RegPos{RR: RegexPair{Right: Regex{Word}}, K: -1},
		RegPos{RR: RegexPair{Left: Regex{Word}, Right: Regex{Space}}, K: 2},
		RegPos{RR: RegexPair{Left: Regex{Literal("zzz-never")}}, K: 1}, // always errs
	}
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(len(text))
		hi := lo + rng.Intn(len(text)-lo)
		for _, a := range attrs {
			want, wantErr := a.Eval(text[lo:hi])
			got, gotErr := c.EvalAttr(lo, hi, a)
			if (wantErr == nil) != (gotErr == nil) || (wantErr == nil && got != want) {
				t.Fatalf("EvalAttr(%d,%d,%s) = (%d,%v), Eval = (%d,%v)", lo, hi, a, got, gotErr, want, wantErr)
			}
		}
	}
}

// TestCacheIndexForMemoizesAndMatches checks that IndexFor returns the
// same index instance per (range, pool) and that the built index agrees
// with NewIndex.
func TestCacheIndexForMemoizesAndMatches(t *testing.T) {
	text := cacheSample
	c := NewCache(text)
	pool := []Token{Number, Word, Space, Literal("WARN")}
	id := PoolID(pool)
	ix1 := c.IndexFor(0, len(text), pool, id)
	ix2 := c.IndexFor(0, len(text), pool, id)
	if ix1 != ix2 {
		t.Fatal("IndexFor rebuilt a memoized index")
	}
	ref := NewIndex(text, pool)
	rr := RegexPair{Left: Regex{Literal("WARN"), Space}, Right: Regex{Number}}
	if !equalPositions(ix1.Positions(rr), ref.Positions(rr)) {
		t.Fatalf("cached index disagrees with NewIndex: %v vs %v", ix1.Positions(rr), ref.Positions(rr))
	}
	if PoolID(pool) == PoolID(pool[:2]) {
		t.Fatal("PoolID ignores pool contents")
	}
}

// TestCacheEvictionKeepsPinnedEntries floods the cache with sub-range
// entries past every bound and requires the whole-document entries to
// survive eviction.
func TestCacheEvictionKeepsPinnedEntries(t *testing.T) {
	text := randomText(rand.New(rand.NewSource(3)), 400)
	c := NewCache(text)
	rr := RegexPair{Left: Regex{Number}}
	pool := []Token{Number}
	id := PoolID(pool)

	wholeSeq := c.Positions(0, len(text), rr)
	wholeIx := c.IndexFor(0, len(text), pool, id)

	// Flood: distinct (lo,hi) keys well past maxSeqEntries/maxBoundEntries
	// and maxIndexEntries.
	n := 0
	for lo := 0; lo < len(text) && n < maxSeqEntries+100; lo++ {
		for hi := lo; hi <= len(text) && n < maxSeqEntries+100; hi += 7 {
			c.Positions(lo, hi, rr)
			if n < maxIndexEntries+10 {
				c.IndexFor(lo, hi, pool, id)
			}
			n++
		}
	}

	c.mu.RLock()
	_, seqOK := c.seqs[seqKey{lo: 0, hi: len(text), h: pairFingerprint(rr)}]
	_, boundOK := c.bounds[boundKey{lo: 0, hi: len(text), tok: Number.Name}]
	ixAfter, ixOK := c.indexes[indexKey{lo: 0, hi: len(text), pool: id}]
	c.mu.RUnlock()
	if !seqOK {
		t.Fatal("whole-document position sequence was evicted")
	}
	if !boundOK {
		t.Fatal("whole-document token boundaries were evicted")
	}
	if !ixOK || ixAfter != wholeIx {
		t.Fatal("whole-document index was evicted or rebuilt")
	}
	if got := c.Positions(0, len(text), rr); !equalPositions(got, wholeSeq) {
		t.Fatalf("pinned sequence changed: %v vs %v", got, wholeSeq)
	}
}

// TestCacheEvictionCounter asserts Stats.Evictions counts dropped entries
// when a byte cap forces an eviction storm, and that evicted answers are
// recomputed identically — the cache is pure memoization, so an eviction
// storm (e.g. injected by the chaos layer) must never change results.
func TestCacheEvictionCounter(t *testing.T) {
	text := randomText(rand.New(rand.NewSource(9)), 400)
	c := NewCache(text)
	rr := RegexPair{Left: Regex{Number}}
	before := map[int][]int{}
	for lo := 1; lo < 40; lo++ {
		before[lo] = c.Positions(lo, len(text), rr)
	}
	if c.Stats().Evictions != 0 {
		t.Fatalf("evictions before cap = %d", c.Stats().Evictions)
	}
	c.SetMaxBytes(1)
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("byte cap of 1 evicted nothing")
	}
	for lo := 1; lo < 40; lo++ {
		if got := c.Positions(lo, len(text), rr); !equalPositions(got, before[lo]) {
			t.Fatalf("positions at lo=%d changed after eviction storm: %v vs %v", lo, got, before[lo])
		}
	}
}
