package tokens

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenMatchPrefix(t *testing.T) {
	cases := []struct {
		tok  Token
		s    string
		i    int
		want int
	}{
		{Number, "123abc", 0, 3},
		{Number, "abc", 0, -1},
		{Number, "a12", 1, 2},
		{Word, "ab12,cd", 0, 4},
		{Alpha, "ab12", 0, 2},
		{Upper, "ABc", 0, 2},
		{Lower, "abC", 0, 2},
		{Space, "  \tx", 0, 3},
		{Comma, ",,x", 0, 2},
		{DblQuote, `""x`, 0, 2},
		{Literal(`,""`), `a,""b`, 1, 3},
		{Literal(`,""`), `a,"b`, 1, -1},
	}
	for _, c := range cases {
		if got := c.tok.MatchPrefix(c.s, c.i); got != c.want {
			t.Errorf("%s.MatchPrefix(%q, %d) = %d, want %d", c.tok, c.s, c.i, got, c.want)
		}
	}
}

func TestTokenMatchSuffix(t *testing.T) {
	cases := []struct {
		tok  Token
		s    string
		i    int
		want int
	}{
		{Number, "ab123", 5, 3},
		{Number, "ab123", 4, -1}, // not right-maximal: a digit follows
		{Number, "ab123x", 5, 3},
		{Number, "abc", 3, -1},
		{Word, "x ab1", 5, 3},
		{Literal(`",`), `a",b`, 3, 2},
		{Literal(`",`), `ab,b`, 3, -1},
		{Literal("xyz"), "xy", 2, -1},
	}
	for _, c := range cases {
		if got := c.tok.MatchSuffix(c.s, c.i); got != c.want {
			t.Errorf("%s.MatchSuffix(%q, %d) = %d, want %d", c.tok, c.s, c.i, got, c.want)
		}
	}
}

func TestTokenPrefixSuffixAgreeProperty(t *testing.T) {
	// For class tokens, MatchPrefix at i and MatchSuffix at i+n agree on
	// maximal runs: if MatchPrefix(s, i) = n > 0 then MatchSuffix(s, i+n) ≥ n.
	f := func(raw []byte) bool {
		s := ""
		for _, b := range raw {
			s += string(rune('0' + b%4)) // digits and a few letters below
			if b%7 == 0 {
				s += "a"
			}
		}
		for i := 0; i <= len(s); i++ {
			n := Number.MatchPrefix(s, i)
			if n > 0 && Number.MatchSuffix(s, i+n) < n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStandardTokenSetSize(t *testing.T) {
	if len(Standard) != 30 {
		t.Fatalf("standard token set has %d tokens, want 30 (as in the paper)", len(Standard))
	}
	seen := map[string]bool{}
	for _, tok := range Standard {
		if seen[tok.Name] {
			t.Fatalf("duplicate token %s", tok.Name)
		}
		seen[tok.Name] = true
		if tok.IsDynamic() {
			t.Fatalf("standard token %s claims to be dynamic", tok.Name)
		}
	}
	if !Literal("x").IsDynamic() {
		t.Fatal("literal token should be dynamic")
	}
}

func TestRegexMatch(t *testing.T) {
	r := Regex{Number, DblQuote}
	s := `abc 123"`
	if got := r.MatchSuffix(s, len(s)); got != 4 {
		t.Fatalf("MatchSuffix = %d, want 4", got)
	}
	if got := r.MatchPrefix(s, 4); got != 4 {
		t.Fatalf("MatchPrefix = %d, want 4", got)
	}
	if got := r.MatchPrefix(s, 0); got != -1 {
		t.Fatalf("MatchPrefix at 0 = %d, want -1", got)
	}
	if got := (Regex{}).MatchPrefix(s, 3); got != 0 {
		t.Fatalf("ε MatchPrefix = %d, want 0", got)
	}
	if got := (Regex{}).MatchSuffix(s, 3); got != 0 {
		t.Fatalf("ε MatchSuffix = %d, want 0", got)
	}
}

func TestRegexStringAndEq(t *testing.T) {
	r := Regex{Number, Comma}
	if r.String() != "[Number, Comma]" {
		t.Fatalf("String = %q", r.String())
	}
	if (Regex{}).String() != "ε" {
		t.Fatal("ε display broken")
	}
	if !r.Eq(Regex{Number, Comma}) || r.Eq(Regex{Comma, Number}) || r.Eq(Regex{Number}) {
		t.Fatal("Eq broken")
	}
	if r.DynamicCount() != 0 || (Regex{Literal("a"), Number}).DynamicCount() != 1 {
		t.Fatal("DynamicCount broken")
	}
}

func TestRegexPairPositions(t *testing.T) {
	// positions between a number on the left and a comma on the right
	s := "a1,b22,c3"
	rr := RegexPair{Left: Regex{Number}, Right: Regex{Comma}}
	got := rr.Positions(s)
	want := []int{2, 6}
	if len(got) != len(want) {
		t.Fatalf("Positions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Positions = %v, want %v", got, want)
		}
	}
	// ε left side: all positions where a comma starts
	rr2 := RegexPair{Right: Regex{Comma}}
	got2 := rr2.Positions(s)
	if len(got2) != 2 || got2[0] != 2 || got2[1] != 6 {
		t.Fatalf("Positions ε-left = %v", got2)
	}
	if ps := (RegexPair{}).Positions(s); ps != nil {
		t.Fatalf("double-ε Positions = %v, want nil", ps)
	}
}

func TestCountMatches(t *testing.T) {
	if got := CountMatches(Regex{Number}, "1a22b333"); got != 3 {
		t.Fatalf("CountMatches = %d, want 3", got)
	}
	if got := CountMatches(Regex{}, "abc"); got != 0 {
		t.Fatalf("ε CountMatches = %d, want 0", got)
	}
	if got := CountMatches(Regex{Literal("ab")}, "ababab"); got != 3 {
		t.Fatalf("literal CountMatches = %d, want 3", got)
	}
}

func TestAbsPosEval(t *testing.T) {
	s := "hello"
	cases := []struct {
		k, want int
		ok      bool
	}{
		{0, 0, true}, {5, 5, true}, {-1, 5, true}, {-6, 0, true},
		{6, 0, false}, {-7, 0, false},
	}
	for _, c := range cases {
		got, err := AbsPos{K: c.k}.Eval(s)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("AbsPos(%d) = %d, %v; want %d", c.k, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("AbsPos(%d) should fail", c.k)
		}
	}
}

func TestRegPosEval(t *testing.T) {
	s := "a1,b2,c3"
	rr := RegexPair{Left: Regex{Number}, Right: Regex{Comma}}
	// positions: 2, 5
	p1, err := (RegPos{RR: rr, K: 1}).Eval(s)
	if err != nil || p1 != 2 {
		t.Fatalf("RegPos k=1: %d, %v", p1, err)
	}
	pLast, err := (RegPos{RR: rr, K: -1}).Eval(s)
	if err != nil || pLast != 5 {
		t.Fatalf("RegPos k=-1: %d, %v", pLast, err)
	}
	if _, err := (RegPos{RR: rr, K: 3}).Eval(s); err == nil {
		t.Fatal("RegPos k=3 should fail")
	}
	if _, err := (RegPos{RR: rr, K: 0}).Eval(s); err == nil {
		t.Fatal("RegPos k=0 should fail")
	}
}

func TestSeqsEndingAt(t *testing.T) {
	s := `ab12"`
	seqs := SeqsEndingAt(s, len(s), Standard)
	if len(seqs) == 0 || len(seqs[0]) != 0 {
		t.Fatal("first sequence must be ε")
	}
	var found bool
	for _, r := range seqs {
		if r.Eq(Regex{Number, DblQuote}) {
			found = true
		}
		if got := r.MatchSuffix(s, len(s)); got < 0 {
			t.Errorf("enumerated regex %s does not match suffix", r)
		}
	}
	if !found {
		t.Fatal("expected [Number, Quote] among suffix sequences")
	}
}

func TestSeqsStartingAt(t *testing.T) {
	s := `12,ab`
	seqs := SeqsStartingAt(s, 0, Standard)
	var found bool
	for _, r := range seqs {
		if r.Eq(Regex{Number, Comma, Alpha}) {
			found = true
		}
		if len(r) > 0 && r.MatchPrefix(s, 0) < 0 {
			t.Errorf("enumerated regex %s does not match prefix", r)
		}
	}
	if !found {
		t.Fatal("expected [Number, Comma, Alpha] among prefix sequences")
	}
}

func TestLearnAttrsSingleExample(t *testing.T) {
	// Position after "ID:" in a simple line.
	s := "ID:42 name"
	attrs := LearnAttrs([]PosExample{{S: s, K: 3}}, Standard)
	if len(attrs) == 0 {
		t.Fatal("no attributes learned")
	}
	for _, a := range attrs {
		k, err := a.Eval(s)
		if err != nil || k != 3 {
			t.Fatalf("inconsistent attribute %s: %d, %v", a, k, err)
		}
	}
}

func TestLearnAttrsCrossExampleGeneralizes(t *testing.T) {
	// The start of the number after the colon, across two strings of
	// different lengths: AbsPos cannot work; a colon-context RegPos must.
	exs := []PosExample{
		{S: "x:1", K: 2},
		{S: "longer:22", K: 7},
	}
	attrs := LearnAttrs(exs, Standard)
	if len(attrs) == 0 {
		t.Fatal("no attributes learned")
	}
	top := attrs[0]
	if k, err := top.Eval("abc:9"); err != nil || k != 4 {
		t.Fatalf("top attribute %s failed to generalize: %d, %v", top, k, err)
	}
	for _, a := range attrs {
		if _, isAbs := a.(AbsPos); isAbs {
			t.Fatalf("AbsPos %s cannot be consistent with both examples", a)
		}
	}
}

func TestLearnAttrsRanking(t *testing.T) {
	// Position 0 should be ranked as AbsPos(0).
	attrs := LearnAttrs([]PosExample{{S: "abc", K: 0}, {S: "xy", K: 0}}, Standard)
	if len(attrs) == 0 {
		t.Fatal("no attributes")
	}
	if a, ok := attrs[0].(AbsPos); !ok || a.K != 0 {
		t.Fatalf("top attribute = %s, want AbsPos(0)", attrs[0])
	}
}

func TestLearnAttrsEmpty(t *testing.T) {
	if attrs := LearnAttrs(nil, Standard); attrs != nil {
		t.Fatal("expected nil for no examples")
	}
}

func TestLearnAttrsWithDynamicTokens(t *testing.T) {
	doc := `h,""Be"",1` + "\n" + `i,""Sc"",2`
	line := `h,""Be"",1`
	dyn := DiscoverDynamicTokens(doc, []PosExample{{S: line, K: 4}}, 4, 2, 20)
	if len(dyn) == 0 {
		t.Fatal("no dynamic tokens discovered")
	}
	var hasQuotePair bool
	for _, d := range dyn {
		if strings.Contains(d.Name, `,""`) {
			hasQuotePair = true
		}
	}
	if !hasQuotePair {
		t.Fatalf(`expected a dynamic token containing ,"" got %v`, dyn)
	}
	attrs := LearnAttrs([]PosExample{{S: line, K: 4}}, append(append([]Token{}, Standard...), dyn...))
	if len(attrs) == 0 {
		t.Fatal("no attributes with dynamic tokens")
	}
}

func TestLearnRegexPairs(t *testing.T) {
	s := `a:1,b:22,c:333`
	// positions right after each colon
	exs := []SeqPosExample{{S: s, Ks: []int{2, 6}}}
	pairs := LearnRegexPairs(exs, Standard)
	if len(pairs) == 0 {
		t.Fatal("no regex pairs learned")
	}
	for _, rr := range pairs {
		ps := rr.Positions(s)
		if !containsAllInts(ps, []int{2, 6}) {
			t.Fatalf("pair %s misses positives: %v", rr, ps)
		}
	}
	// the natural pair (Colon, Number) must select position 11 too
	top := pairs[0]
	ps := top.Positions(s)
	if !containsAllInts(ps, []int{2, 6, 11}) {
		t.Fatalf("top pair %s does not generalize: %v", top, ps)
	}
}

func TestLearnRegexPairsNoPositives(t *testing.T) {
	if got := LearnRegexPairs([]SeqPosExample{{S: "abc"}}, Standard); got != nil {
		t.Fatal("expected nil for no positive positions")
	}
}

func TestDiscoverDynamicTokens(t *testing.T) {
	doc := "foo=1;foo=2;foo=3"
	// example position right after "foo=" occurrences
	dyn := DiscoverDynamicTokens(doc, []PosExample{{S: doc, K: 4}}, 4, 2, 10)
	var found bool
	for _, d := range dyn {
		if d.lit == "foo=" {
			found = true
		}
	}
	if !found {
		t.Fatalf("foo= not promoted: %v", dyn)
	}
	// cap respected
	capped := DiscoverDynamicTokens(doc, []PosExample{{S: doc, K: 4}}, 4, 2, 1)
	if len(capped) != 1 {
		t.Fatalf("cap ignored: %d tokens", len(capped))
	}
}

func TestCountOccurrences(t *testing.T) {
	if countOccurrences("aaaa", "aa") != 2 {
		t.Fatal("non-overlapping count broken")
	}
	if countOccurrences("abc", "x") != 0 {
		t.Fatal("missing substring count broken")
	}
}

func TestContainsAllInts(t *testing.T) {
	if !containsAllInts([]int{1, 2, 3}, []int{1, 3}) {
		t.Fatal("subset not detected")
	}
	if containsAllInts([]int{1, 2, 3}, []int{3, 1}) {
		t.Fatal("order ignored")
	}
	if !containsAllInts([]int{1}, nil) {
		t.Fatal("empty subset should hold")
	}
}

func TestClassTokenMaximality(t *testing.T) {
	// Class tokens match maximal runs only: no match starting or ending
	// inside a run.
	if got := Word.MatchPrefix("abcd", 1); got != -1 {
		t.Fatalf("prefix inside run = %d, want -1", got)
	}
	if got := Word.MatchPrefix("abcd", 0); got != 4 {
		t.Fatalf("prefix at run start = %d, want 4", got)
	}
	if got := Lower.MatchSuffix("Vaziri, S", 6); got != 5 {
		t.Fatalf("suffix at run end = %d, want 5", got)
	}
	if got := Lower.MatchSuffix("Vaziri, S", 4); got != -1 {
		t.Fatalf("suffix inside run = %d, want -1", got)
	}
	// Literal tokens are exempt from maximality.
	if got := Literal("zi").MatchSuffix("Vaziri", 4); got != 2 {
		t.Fatalf("literal suffix = %d, want 2", got)
	}
}

func TestAttrSpecRoundTrip(t *testing.T) {
	attrs := []Attr{
		AbsPos{K: 0},
		AbsPos{K: -3},
		RegPos{RR: RegexPair{Left: Regex{Number, Comma}, Right: Regex{Literal(`,""`)}}, K: -2},
		RegPos{RR: RegexPair{Right: Regex{Upper}}, K: 1},
	}
	for _, a := range attrs {
		s, err := MarshalAttr(a)
		if err != nil {
			t.Fatalf("MarshalAttr(%s): %v", a, err)
		}
		back, err := UnmarshalAttr(s)
		if err != nil {
			t.Fatalf("UnmarshalAttr(%s): %v", s, err)
		}
		if back.String() != a.String() {
			t.Fatalf("round trip changed attr: %s vs %s", a, back)
		}
		// behavioural equality on a sample string
		in := `ab12,""34,Z`
		k1, e1 := a.Eval(in)
		k2, e2 := back.Eval(in)
		if (e1 == nil) != (e2 == nil) || k1 != k2 {
			t.Fatalf("round trip changed behaviour of %s", a)
		}
	}
}

func TestRegexPairSpecRoundTrip(t *testing.T) {
	rr := RegexPair{Left: Regex{Word}, Right: Regex{Literal("=="), Number}}
	s, err := MarshalRegexPair(rr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRegexPair(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != rr.String() {
		t.Fatalf("round trip changed pair: %s vs %s", rr, back)
	}
}

func TestSpecErrors(t *testing.T) {
	if _, err := FromSpec(TokenSpec{Kind: "std", Value: "NoSuchToken"}); err == nil {
		t.Fatal("unknown standard token accepted")
	}
	if _, err := FromSpec(TokenSpec{Kind: "weird"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := UnmarshalAttr("not json"); err == nil {
		t.Fatal("junk attr accepted")
	}
	if _, err := UnmarshalAttr(`{"kind":"weird"}`); err == nil {
		t.Fatal("unknown attr kind accepted")
	}
	if _, err := UnmarshalRegexPair("junk"); err == nil {
		t.Fatal("junk pair accepted")
	}
	if _, err := UnmarshalAttr(`{"kind":"reg","k":1,"left":[{"kind":"weird"}]}`); err == nil {
		t.Fatal("bad regex token accepted")
	}
}
