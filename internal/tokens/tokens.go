// Package tokens implements the token and regex substrate of the text
// instantiation of FlashExtract (§5.1): a fixed set of standard
// character-class tokens plus dynamically learned literal tokens, regexes
// that are concatenations of at most three tokens, regex-pair position
// sequences (PosSeq), and position attributes (AbsPos / RegPos) together
// with their example-based learners.
package tokens

import (
	"fmt"
	"strings"
)

// Token matches maximal runs of characters at a string boundary. Tokens
// are value types and must be comparable.
type Token struct {
	// Name is the token's display name.
	Name string
	// class is non-nil for character-class tokens (matched as C+).
	class func(byte) bool
	// lit is non-empty for literal (dynamic) tokens.
	lit string
}

// Literal returns a dynamic token matching the exact string s.
func Literal(s string) Token {
	return Token{Name: fmt.Sprintf("DynamicTok(%s)", s), lit: s}
}

// IsDynamic reports whether t is a dynamically learned literal token.
func (t Token) IsDynamic() bool { return t.lit != "" }

// Lit returns the literal content of a dynamic token, or "" for
// character-class tokens. It exposes the matched bytes to static
// analyses (e.g. the batch prefilter) without widening the Token API.
func (t Token) Lit() string { return t.lit }

// MatchesByte reports whether a character-class token's class accepts b.
// It is always false for dynamic literal tokens (use Lit for those).
func (t Token) MatchesByte(b byte) bool { return t.class != nil && t.class(b) }

// MatchPrefix returns the length of the match of t starting at s[i:], or
// -1 when t does not match there. Class tokens match maximal runs (as in
// FlashFill-style position learning): the run must not be extensible to
// the left, i.e. position i must be a run boundary. Literal tokens match
// anywhere.
func (t Token) MatchPrefix(s string, i int) int {
	if t.lit != "" {
		if strings.HasPrefix(s[i:], t.lit) {
			return len(t.lit)
		}
		return -1
	}
	if i > 0 && t.class(s[i-1]) {
		return -1 // not left-maximal
	}
	j := i
	for j < len(s) && t.class(s[j]) {
		j++
	}
	if j == i {
		return -1
	}
	return j - i
}

// MatchSuffix returns the length of the match of t ending at position i
// (exclusive), or -1 when t does not match there. Class tokens match
// maximal runs: position i must be a run boundary on the right.
func (t Token) MatchSuffix(s string, i int) int {
	if t.lit != "" {
		if i >= len(t.lit) && s[i-len(t.lit):i] == t.lit {
			return len(t.lit)
		}
		return -1
	}
	if i < len(s) && t.class(s[i]) {
		return -1 // not right-maximal
	}
	j := i
	for j > 0 && t.class(s[j-1]) {
		j--
	}
	if j == i {
		return -1
	}
	return i - j
}

func (t Token) String() string { return t.Name }

func classToken(name string, f func(byte) bool) Token {
	return Token{Name: name, class: f}
}

func charToken(name string, c byte) Token {
	return Token{Name: name, class: func(b byte) bool { return b == c }}
}

// The standard token set (30 tokens, mirroring the paper's instantiation).
var (
	Word       = classToken("Word", func(b byte) bool { return isAlnum(b) })
	Alpha      = classToken("Alpha", func(b byte) bool { return isAlpha(b) })
	Lower      = classToken("Lower", func(b byte) bool { return b >= 'a' && b <= 'z' })
	Upper      = classToken("Upper", func(b byte) bool { return b >= 'A' && b <= 'Z' })
	Number     = classToken("Number", func(b byte) bool { return b >= '0' && b <= '9' })
	Space      = classToken("Space", func(b byte) bool { return b == ' ' || b == '\t' })
	Comma      = charToken("Comma", ',')
	Dot        = charToken("Dot", '.')
	Semicolon  = charToken("Semicolon", ';')
	Colon      = charToken("Colon", ':')
	Hyphen     = charToken("Hyphen", '-')
	Underscore = charToken("Underscore", '_')
	Slash      = charToken("Slash", '/')
	Backslash  = charToken("Backslash", '\\')
	Quote      = charToken("SingleQuote", '\'')
	DblQuote   = charToken("Quote", '"')
	LParen     = charToken("LParen", '(')
	RParen     = charToken("RParen", ')')
	LBracket   = charToken("LBracket", '[')
	RBracket   = charToken("RBracket", ']')
	Lt         = charToken("Lt", '<')
	Gt         = charToken("Gt", '>')
	Equals     = charToken("Equals", '=')
	Plus       = charToken("Plus", '+')
	Star       = charToken("Star", '*')
	Hash       = charToken("Hash", '#')
	Dollar     = charToken("Dollar", '$')
	Percent    = charToken("Percent", '%')
	Amp        = charToken("Amp", '&')
	At         = charToken("At", '@')
)

// Standard is the fixed token set used by the text instantiation.
var Standard = []Token{
	Word, Alpha, Lower, Upper, Number, Space,
	Comma, Dot, Semicolon, Colon, Hyphen, Underscore, Slash, Backslash,
	Quote, DblQuote, LParen, RParen, LBracket, RBracket,
	Lt, Gt, Equals, Plus, Star, Hash, Dollar, Percent, Amp, At,
}

func isAlpha(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isAlnum(b byte) bool {
	return isAlpha(b) || (b >= '0' && b <= '9')
}

// MaxRegexTokens is the maximum number of tokens in a regex (T{0,3}).
const MaxRegexTokens = 3

// Regex is a concatenation of at most MaxRegexTokens tokens. The empty
// regex (ε) matches at every position with length 0.
type Regex []Token

func (r Regex) String() string {
	if len(r) == 0 {
		return "ε"
	}
	parts := make([]string, len(r))
	for i, t := range r {
		parts[i] = t.Name
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// DynamicCount returns the number of dynamic tokens in r.
func (r Regex) DynamicCount() int {
	n := 0
	for _, t := range r {
		if t.IsDynamic() {
			n++
		}
	}
	return n
}

// MatchPrefix returns the total length of r matching as a prefix of s[i:],
// or -1. Tokens match greedily left to right.
func (r Regex) MatchPrefix(s string, i int) int {
	j := i
	for _, t := range r {
		n := t.MatchPrefix(s, j)
		if n < 0 {
			return -1
		}
		j += n
	}
	return j - i
}

// MatchSuffix returns the total length of r matching as a suffix ending at
// position i (exclusive), or -1. Tokens match greedily right to left.
func (r Regex) MatchSuffix(s string, i int) int {
	j := i
	for k := len(r) - 1; k >= 0; k-- {
		n := r[k].MatchSuffix(s, j)
		if n < 0 {
			return -1
		}
		j -= n
	}
	return i - j
}

// Eq reports whether two regexes are identical token sequences.
func (r Regex) Eq(o Regex) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i].Name != o[i].Name {
			return false
		}
	}
	return true
}

// RegexPair is the rr construct: a pair of regexes matching on the left
// and right side of a position.
type RegexPair struct {
	Left, Right Regex
}

func (rr RegexPair) String() string {
	return fmt.Sprintf("(%s, %s)", rr.Left, rr.Right)
}

// Cost is the heuristic ranking score of the regex pair: shorter contexts
// rank better, and dynamic tokens carry a small penalty.
func (rr RegexPair) Cost() int {
	return 1 + len(rr.Left) + len(rr.Right) + rr.Left.DynamicCount() + rr.Right.DynamicCount()
}

// Positions returns the position sequence identified by rr in s: all
// positions k such that rr.Left matches a suffix ending at k and rr.Right
// matches a prefix starting at k. Both regexes empty yields no positions
// (a vacuous match everywhere is never useful and would explode learning).
func (rr RegexPair) Positions(s string) []int {
	if len(rr.Left) == 0 && len(rr.Right) == 0 {
		return nil
	}
	var out []int
	for k := 0; k <= len(s); k++ {
		if rr.Left.MatchSuffix(s, k) < 0 {
			continue
		}
		if rr.Right.MatchPrefix(s, k) < 0 {
			continue
		}
		out = append(out, k)
	}
	return out
}

// CountMatches returns the number of non-overlapping matches of r in s,
// scanning left to right.
func CountMatches(r Regex, s string) int {
	if len(r) == 0 {
		return 0
	}
	n := 0
	for i := 0; i <= len(s); {
		m := r.MatchPrefix(s, i)
		if m > 0 {
			n++
			i += m
		} else {
			i++
		}
	}
	return n
}
