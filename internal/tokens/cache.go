package tokens

import (
	"sync"
	"sync/atomic"
)

// Cache is a document-scoped evaluation cache. It is owned by a document
// (one immutable text) and memoizes the three quantities the synthesis
// hot loop recomputes most: per-token boundary positions, regex-pair
// position sequences, and whole boundary indexes per token pool — all
// keyed on half-open ranges [lo, hi) of the document text, so the same
// answer is shared across candidate programs, validation runs, and
// refinement iterations.
//
// All methods are safe for concurrent use; returned slices are shared and
// must be treated as read-only. The backing text never changes, so cached
// entries are valid forever — eviction exists only to bound memory, and
// whole-document entries (the hottest: every ⊥-relative candidate
// evaluates against the whole region) are pinned.
type Cache struct {
	text string

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64 // entries dropped by any eviction path
	maxBytes  atomic.Int64 // 0 = no byte cap

	mu      sync.RWMutex
	bytes   int64 // approximate resident bytes of all entries (guarded by mu)
	bounds  map[boundKey]boundEntry
	seqs    map[seqKey][]seqEntry
	counts  map[countKey][]countEntry
	indexes map[indexKey]*Index
}

// Stats summarizes the cache: probe hits and misses, entry count,
// entries evicted over the cache's lifetime, and approximate resident
// bytes.
type Stats struct {
	Hits        int64
	Misses      int64
	Entries     int64
	Evictions   int64
	ApproxBytes int64
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	entries := int64(len(c.bounds) + len(c.seqs) + len(c.counts) + len(c.indexes))
	bytes := c.bytes
	c.mu.RUnlock()
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Entries:     entries,
		Evictions:   c.evictions.Load(),
		ApproxBytes: bytes,
	}
}

// SetMaxBytes caps the cache's approximate resident bytes (0 removes the
// cap). When the cache is already over the new cap, non-pinned entries are
// evicted immediately.
func (c *Cache) SetMaxBytes(n int64) {
	c.maxBytes.Store(n)
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.enforceBytesLocked()
	c.mu.Unlock()
}

// Per-entry approximate sizes: slice headers, map-key overhead, and 8
// bytes per cached position. These are estimates, not allocations counts —
// the cap is a soft bound on resident memory.
func boundSize(e boundEntry) int64 { return 64 + 8*int64(len(e.pre)+len(e.suf)) }
func seqSize(e seqEntry) int64 {
	return 96 + 8*int64(len(e.ps)) + 48*int64(len(e.rr.Left)+len(e.rr.Right))
}
func countSize(e countEntry) int64 { return 64 + 48*int64(len(e.r)) }
func indexSize(ix *Index) int64 {
	n := int64(128)
	for _, ps := range ix.pre {
		n += 48 + 8*int64(len(ps))
	}
	for _, ps := range ix.suf {
		n += 48 + 8*int64(len(ps))
	}
	return n
}

// enforceBytesLocked evicts non-pinned entries from every map when the
// byte cap is exceeded. Requires c.mu held for writing.
func (c *Cache) enforceBytesLocked() {
	limit := c.maxBytes.Load()
	if limit <= 0 || c.bytes <= limit {
		return
	}
	c.evictSeqsLocked()
	if c.bytes <= limit {
		return
	}
	c.evictBoundsLocked()
	if c.bytes <= limit {
		return
	}
	for k, es := range c.counts {
		if !c.pinned(k.lo, k.hi) {
			for _, e := range es {
				c.bytes -= countSize(e)
			}
			c.evictions.Add(1)
			delete(c.counts, k)
		}
	}
	if c.bytes <= limit {
		return
	}
	for k, ix := range c.indexes {
		if !c.pinned(k.lo, k.hi) {
			c.bytes -= indexSize(ix)
			c.evictions.Add(1)
			delete(c.indexes, k)
		}
	}
}

type boundKey struct {
	lo, hi int
	tok    string
}

type boundEntry struct {
	pre, suf []int
}

// seqKey buckets position-sequence entries by range and regex-pair
// fingerprint; the entry list resolves fingerprint collisions by exact
// pair comparison. Hashing token names directly is far cheaper than
// materializing RegexPair.String() on every probe of the hot loop.
type seqKey struct {
	lo, hi int
	h      uint64
}

type seqEntry struct {
	rr RegexPair
	ps []int
}

// countKey buckets match-count entries by range and regex fingerprint.
type countKey struct {
	lo, hi int
	h      uint64
}

type countEntry struct {
	r Regex
	n int
}

type indexKey struct {
	lo, hi int
	pool   uint64
}

// Cache size bounds. Sub-document ranges (lines, suffixes, prefixes)
// repeat heavily but are unbounded in principle; whole-document entries
// are never evicted.
const (
	maxBoundEntries = 32768
	maxSeqEntries   = 32768
	maxCountEntries = 32768
	maxIndexEntries = 64
)

// smallRange bounds the ranges whose RegPos evaluation materializes and
// memoizes the full position sequence. Sequence-map functions evaluate one
// attribute per λ-bound position, each over a different suffix or prefix
// of the input — materializing every such sequence would make mapping
// quadratic in document size (see RegPos.Eval), so larger ranges keep the
// lazy directional scan unless their sequence is already cached. Small
// ranges (lines, records) repeat across the candidate cross product, where
// memoization wins.
const smallRange = 2048

// NewCache creates the evaluation cache of one immutable document text.
func NewCache(text string) *Cache {
	return &Cache{
		text:    text,
		bounds:  map[boundKey]boundEntry{},
		seqs:    map[seqKey][]seqEntry{},
		counts:  map[countKey][]countEntry{},
		indexes: map[indexKey]*Index{},
	}
}

// Text returns the cached document text.
func (c *Cache) Text() string { return c.text }

func (c *Cache) pinned(lo, hi int) bool { return lo == 0 && hi == len(c.text) }

// Positions returns the position sequence of rr within text[lo:hi],
// equivalent to rr.Positions(text[lo:hi]) but memoized and anchored on
// cached token boundaries: the scan visits only the boundary positions of
// the pair's most selective edge token instead of every position.
func (c *Cache) Positions(lo, hi int, rr RegexPair) []int {
	if len(rr.Left) == 0 && len(rr.Right) == 0 {
		return nil
	}
	key := seqKey{lo: lo, hi: hi, h: pairFingerprint(rr)}
	if ps, ok := c.seqGet(key, rr); ok {
		return ps
	}

	s := c.text[lo:hi]
	var cands []int
	haveAnchor := false
	if len(rr.Left) > 0 {
		_, ends := c.Boundaries(lo, hi, rr.Left[len(rr.Left)-1])
		cands, haveAnchor = ends, true
	}
	if len(rr.Right) > 0 {
		starts, _ := c.Boundaries(lo, hi, rr.Right[0])
		if !haveAnchor || len(starts) < len(cands) {
			cands = starts
		}
	}
	var out []int
	for _, k := range cands {
		if rr.Left.MatchSuffix(s, k) < 0 {
			continue
		}
		if rr.Right.MatchPrefix(s, k) < 0 {
			continue
		}
		out = append(out, k)
	}

	e := seqEntry{rr: rr, ps: out}
	c.mu.Lock()
	if len(c.seqs) >= maxSeqEntries && !c.pinned(lo, hi) {
		c.evictSeqsLocked()
	}
	c.seqs[key] = append(c.seqs[key], e)
	c.bytes += seqSize(e)
	c.enforceBytesLocked()
	c.mu.Unlock()
	return out
}

// seqGet looks up a memoized position sequence, resolving fingerprint
// collisions by exact pair comparison. It records the probe as a cache hit
// or miss.
func (c *Cache) seqGet(key seqKey, rr RegexPair) ([]int, bool) {
	c.mu.RLock()
	for _, e := range c.seqs[key] {
		if pairEqual(e.rr, rr) {
			c.mu.RUnlock()
			c.hits.Add(1)
			return e.ps, true
		}
	}
	c.mu.RUnlock()
	c.misses.Add(1)
	return nil, false
}

// Boundaries returns the boundary positions of token t within text[lo:hi]:
// the positions where t matches as a prefix (run starts) and as a suffix
// (run ends), relative to lo. Both slices are cached and read-only.
func (c *Cache) Boundaries(lo, hi int, t Token) (pre, suf []int) {
	key := boundKey{lo: lo, hi: hi, tok: t.Name}
	c.mu.RLock()
	e, ok := c.bounds[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return e.pre, e.suf
	}
	c.misses.Add(1)
	e = scanBoundaries(c.text[lo:hi], t)
	c.mu.Lock()
	if len(c.bounds) >= maxBoundEntries && !c.pinned(lo, hi) {
		c.evictBoundsLocked()
	}
	c.bounds[key] = e
	c.bytes += boundSize(e)
	c.enforceBytesLocked()
	c.mu.Unlock()
	return e.pre, e.suf
}

// scanBoundaries computes the prefix/suffix boundary positions of one
// token over s (the per-token body of NewIndex).
func scanBoundaries(s string, t Token) boundEntry {
	var e boundEntry
	if t.lit != "" {
		for k := 0; k+len(t.lit) <= len(s); k++ {
			if s[k:k+len(t.lit)] == t.lit {
				e.pre = append(e.pre, k)
				e.suf = append(e.suf, k+len(t.lit))
			}
		}
		return e
	}
	k := 0
	for k < len(s) {
		if !t.class(s[k]) {
			k++
			continue
		}
		start := k
		for k < len(s) && t.class(s[k]) {
			k++
		}
		e.pre = append(e.pre, start)
		e.suf = append(e.suf, k)
	}
	return e
}

// EvalAttr evaluates a position attribute against text[lo:hi], equivalent
// to a.Eval(text[lo:hi]). RegPos attributes over small or whole-document
// ranges resolve against the memoized position sequence of their regex
// pair, so re-evaluating the same pair over the same range — the common
// case when attribute candidates are crossed into pair programs — costs
// one map lookup. Large sub-document ranges keep RegPos's lazy directional
// scan (consulting the cache first) to avoid quadratic mapping.
func (c *Cache) EvalAttr(lo, hi int, a Attr) (int, error) {
	v, ok := a.(RegPos)
	if !ok {
		return a.Eval(c.text[lo:hi])
	}
	if hi-lo <= smallRange || c.pinned(lo, hi) {
		return v.evalIn(c.Positions(lo, hi, v.RR))
	}
	key := seqKey{lo: lo, hi: hi, h: pairFingerprint(v.RR)}
	if ps, hit := c.seqGet(key, v.RR); hit {
		return v.evalIn(ps)
	}
	return v.Eval(c.text[lo:hi])
}

// CountIn returns CountMatches(r, text[lo:hi]) memoized per (range,
// regex). Line predicates re-count the same regex over the same line once
// per candidate program; the count is a pure function of the range.
func (c *Cache) CountIn(lo, hi int, r Regex) int {
	key := countKey{lo: lo, hi: hi, h: regexFingerprint(r)}
	c.mu.RLock()
	for _, e := range c.counts[key] {
		if regexEqual(e.r, r) {
			c.mu.RUnlock()
			c.hits.Add(1)
			return e.n
		}
	}
	c.mu.RUnlock()
	c.misses.Add(1)
	n := CountMatches(r, c.text[lo:hi])
	e := countEntry{r: r, n: n}
	c.mu.Lock()
	if len(c.counts) >= maxCountEntries && !c.pinned(lo, hi) {
		for k, es := range c.counts {
			if !c.pinned(k.lo, k.hi) {
				for _, old := range es {
					c.bytes -= countSize(old)
				}
				delete(c.counts, k)
			}
		}
	}
	c.counts[key] = append(c.counts[key], e)
	c.bytes += countSize(e)
	c.enforceBytesLocked()
	c.mu.Unlock()
	return n
}

// IndexFor returns the boundary index of text[lo:hi] for a token pool,
// memoized per (range, pool). poolID must identify the pool contents (see
// PoolID); learning reuses the index across examples, learners, and
// refinement iterations of one synthesis session.
func (c *Cache) IndexFor(lo, hi int, pool []Token, poolID uint64) *Index {
	key := indexKey{lo: lo, hi: hi, pool: poolID}
	c.mu.RLock()
	ix, ok := c.indexes[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return ix
	}
	c.misses.Add(1)
	// Build from the per-token boundary cache so the token scans are shared
	// with Positions.
	ix = &Index{s: c.text[lo:hi], pre: map[string][]int{}, suf: map[string][]int{}}
	for _, t := range pool {
		if _, done := ix.pre[t.Name]; done {
			continue
		}
		pre, suf := c.Boundaries(lo, hi, t)
		ix.pre[t.Name] = pre
		ix.suf[t.Name] = suf
	}
	c.mu.Lock()
	if len(c.indexes) >= maxIndexEntries && !c.pinned(lo, hi) {
		for k, old := range c.indexes {
			if !c.pinned(k.lo, k.hi) {
				c.bytes -= indexSize(old)
				delete(c.indexes, k)
			}
		}
	}
	c.indexes[key] = ix
	c.bytes += indexSize(ix)
	c.enforceBytesLocked()
	c.mu.Unlock()
	return ix
}

// evictSeqsLocked drops non-pinned position-sequence entries. Requires
// c.mu held for writing.
func (c *Cache) evictSeqsLocked() {
	for k, es := range c.seqs {
		if !c.pinned(k.lo, k.hi) {
			for _, e := range es {
				c.bytes -= seqSize(e)
			}
			c.evictions.Add(1)
			delete(c.seqs, k)
		}
	}
}

// evictBoundsLocked drops non-pinned boundary entries. Requires c.mu held
// for writing.
func (c *Cache) evictBoundsLocked() {
	for k, e := range c.bounds {
		if !c.pinned(k.lo, k.hi) {
			c.bytes -= boundSize(e)
			c.evictions.Add(1)
			delete(c.bounds, k)
		}
	}
}

// PoolID fingerprints a token pool for IndexFor keying (FNV-1a over the
// token names, which uniquely identify tokens — dynamic tokens embed
// their literal in the name).
func PoolID(toks []Token) uint64 {
	h := uint64(14695981039346656037)
	for _, t := range toks {
		for i := 0; i < len(t.Name); i++ {
			h ^= uint64(t.Name[i])
			h *= 1099511628211
		}
		h ^= 0x1f // name separator
		h *= 1099511628211
	}
	return h
}

// regexFingerprint extends an FNV-1a hash with a regex's token names.
func regexFingerprintFrom(h uint64, r Regex) uint64 {
	for _, t := range r {
		for i := 0; i < len(t.Name); i++ {
			h ^= uint64(t.Name[i])
			h *= 1099511628211
		}
		h ^= 0x1f // name separator
		h *= 1099511628211
	}
	return h
}

func regexFingerprint(r Regex) uint64 {
	return regexFingerprintFrom(14695981039346656037, r)
}

// pairFingerprint hashes both sides of a regex pair with a side separator.
func pairFingerprint(rr RegexPair) uint64 {
	h := regexFingerprintFrom(14695981039346656037, rr.Left)
	h ^= 0x2f // side separator
	h *= 1099511628211
	return regexFingerprintFrom(h, rr.Right)
}

// regexEqual reports token-wise equality by name (names uniquely identify
// tokens, including dynamic ones).
func regexEqual(a, b Regex) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			return false
		}
	}
	return true
}

func pairEqual(a, b RegexPair) bool {
	return regexEqual(a.Left, b.Left) && regexEqual(a.Right, b.Right)
}
