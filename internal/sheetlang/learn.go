package sheetlang

import (
	"context"
	"fmt"
	"sort"

	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/region"
)

// attrCap bounds attribute candidate lists in cross products.
const attrCap = 12

// lang implements engine.Language for spreadsheets.
type lang struct{}

func sheetLess(a, b core.Value) bool {
	ar, ok1 := a.(region.Region)
	br, ok2 := b.(region.Region)
	if !ok1 || !ok2 {
		return false
	}
	return ar.Less(br)
}

func conflictOverlap(out, neg core.Value) bool {
	o, ok1 := out.(region.Region)
	n, ok2 := neg.(region.Region)
	if !ok1 || !ok2 {
		return false
	}
	return o == n || o.Overlaps(n)
}

// SynthesizeSeqRegion learns N1 programs (Fig. 9): a Merge of cell
// sequences (CS) or of cell-pair sequences (PS).
func (l *lang) SynthesizeSeqRegion(ctx context.Context, exs []engine.SeqRegionExample) []engine.SeqRegionProgram {
	if len(exs) == 0 {
		return nil
	}
	specs := make([]core.SeqSpec, 0, len(exs))
	for _, ex := range exs {
		if _, _, _, _, _, ok := bounds(ex.Input); !ok {
			return nil
		}
		spec := core.SeqSpec{State: core.NewState(ex.Input).WithExecMemo()}
		for _, p := range ex.Positive {
			spec.Positive = append(spec.Positive, core.Value(p))
		}
		for _, n := range ex.Negative {
			spec.Negative = append(spec.Negative, core.Value(n))
		}
		specs = append(specs, spec)
	}
	inner := core.PreferNonOverlapping(
		core.UnionLearners(learnCS(), learnPSStart(), learnPSEnd()),
		conflictOverlap,
	)
	n1 := core.PreferNonOverlapping(
		core.MergeOp{A: inner, Less: sheetLess}.Learn,
		conflictOverlap,
	)
	progs := core.SynthesizeSeqRegionProg(ctx, n1, specs, conflictOverlap)
	out := make([]engine.SeqRegionProgram, len(progs))
	for i, p := range progs {
		out[i] = seqProgram{p}
	}
	return out
}

// SynthesizeRegion learns N2 programs: Cell(R0, c) for single cells and
// Pair(Cell(R0,c1), Cell(R0,c2)) for rectangles.
func (l *lang) SynthesizeRegion(ctx context.Context, exs []engine.RegionExample) []engine.RegionProgram {
	if len(exs) == 0 {
		return nil
	}
	var coreExs []core.Example
	var inRects []RectRegion
	var cells []CellRegion
	var rectStarts, rectEnds []CellRegion
	isCell := false
	for i, ex := range exs {
		d, r1, c1, r2, c2, ok := bounds(ex.Input)
		if !ok || !ex.Input.Contains(ex.Output) {
			return nil
		}
		coreExs = append(coreExs, core.Example{State: core.NewState(ex.Input), Output: ex.Output})
		inRects = append(inRects, RectRegion{Doc: d, R1: r1, C1: c1, R2: r2, C2: c2})
		switch out := ex.Output.(type) {
		case CellRegion:
			if i > 0 && !isCell {
				return nil
			}
			isCell = true
			cells = append(cells, out)
		case RectRegion:
			if isCell {
				return nil
			}
			rectStarts = append(rectStarts, CellRegion{Doc: out.Doc, R: out.R1, C: out.C1})
			rectEnds = append(rectEnds, CellRegion{Doc: out.Doc, R: out.R2, C: out.C2})
		default:
			return nil
		}
	}
	var cands []core.Program
	if isCell {
		for _, a := range learnCellAttrs(inRects, cells) {
			cands = append(cands, cellProg{c: a})
		}
	} else {
		c1s := capCellAttrs(learnCellAttrs(inRects, rectStarts), attrCap)
		c2s := capCellAttrs(learnCellAttrs(inRects, rectEnds), attrCap)
		for _, a1 := range c1s {
			for _, a2 := range c2s {
				cands = append(cands, cellPairProg{c1: a1, c2: a2})
			}
		}
	}
	progs := core.SynthesizeRegionProg(ctx, func(context.Context, []core.Example) []core.Program { return cands }, coreExs)
	out := make([]engine.RegionProgram, len(progs))
	for i, p := range progs {
		out[i] = regProgram{p}
	}
	return out
}

func capCellAttrs(as []cellAttr, n int) []cellAttr {
	if len(as) > n {
		return as[:n]
	}
	return as
}

// ---- CS: cell sequences ----

// learnCS is CS ::= FilterInt(init, iter, CE) | CellRowMap(λx: Cell(x,c), RS).
func learnCS() core.SeqLearner {
	filtered := core.FilterIntOp{S: learnCE}
	rowMap := core.MapOp{
		Name: "CellRowMap",
		Var:  lambdaVar,
		F:    learnCellInRow,
		S:    learnRS(),
		Decompose: func(st core.State, y []core.Value) ([]core.Value, error) {
			d, _, c1, _, c2, err := inputBounds(st)
			if err != nil {
				return nil, err
			}
			out := make([]core.Value, len(y))
			for i, v := range y {
				cell, ok := v.(CellRegion)
				if !ok {
					return nil, fmt.Errorf("sheetlang: CellRowMap output is %T, want cell", v)
				}
				out[i] = RectRegion{Doc: d, R1: cell.R, C1: c1, R2: cell.R, C2: c2}
			}
			return out, nil
		},
	}
	return core.UnionLearners(rowMap.Learn, filtered.Learn)
}

// learnCE is CE ::= FilterBool(cb, splitcells(R0)).
func learnCE(ctx context.Context, exs []core.SeqExample) []core.Program {
	op := core.FilterBoolOp{Var: lambdaVar, B: learnCellPredProgs, S: learnSplitCells}
	return op.Learn(ctx, exs)
}

func learnSplitCells(_ context.Context, exs []core.SeqExample) []core.Program {
	for _, ex := range exs {
		out, err := splitCells.Exec(ex.State)
		if err != nil {
			return nil
		}
		seq, err := core.AsSeq(out)
		if err != nil || !core.IsSubsequence(ex.Positive, seq) {
			return nil
		}
	}
	return []core.Program{splitCells}
}

// learnCellPredProgs learns cell predicates cb from positive cell
// examples: per-slot most specific common tokens over the 3×3
// neighbourhood, combined into candidates from simple to fully
// constrained.
func learnCellPredProgs(_ context.Context, exs []core.Example) []core.Program {
	var d *Document
	var cells []CellRegion
	for _, ex := range exs {
		v, _ := ex.State.Lookup(lambdaVar)
		cell, ok := v.(CellRegion)
		if !ok {
			return nil
		}
		d = cell.Doc
		cells = append(cells, cell)
	}
	if d == nil {
		return []core.Program{truePred()}
	}
	var out []core.Program
	for _, p := range cellPredCandidates(d, cells) {
		out = append(out, p)
	}
	return out
}

func cellPredCandidates(d *Document, cells []CellRegion) []cellPred {
	var specific [9]CellTok
	for i, off := range neighborhood {
		contents := make([]string, len(cells))
		for j, cl := range cells {
			contents[j] = d.Grid.Cell(cl.R+off[0], cl.C+off[1])
		}
		specific[i] = mostSpecificCommon(d, contents)
	}
	const center = 4
	var out []cellPred
	seen := map[string]bool{}
	add := func(slots ...int) {
		p := truePred()
		for _, s := range slots {
			p.toks[s] = specific[s]
		}
		key := p.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	add(center)
	add(center, 3)
	add(center, 1)
	add(center, 5)
	add(center, 7)
	add(center, 1, 3, 5, 7)
	add(0, 1, 2, 3, 4, 5, 6, 7, 8)
	for s := 0; s < 9; s++ {
		if s != center {
			add(s)
		}
	}
	add() // True
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost() < out[j].Cost() })
	return out
}

// ---- RS: row sequences ----

// learnRS is RS ::= FilterInt(init, iter, FilterBool(rb, splitrows(R0))).
func learnRS() core.SeqLearner {
	inner := core.FilterBoolOp{Var: lambdaVar, B: learnRowPredProgs, S: learnSplitRows}
	return core.FilterIntOp{S: inner.Learn}.Learn
}

func learnSplitRows(_ context.Context, exs []core.SeqExample) []core.Program {
	for _, ex := range exs {
		out, err := splitRows.Exec(ex.State)
		if err != nil {
			return nil
		}
		seq, err := core.AsSeq(out)
		if err != nil || !core.IsSubsequence(ex.Positive, seq) {
			return nil
		}
	}
	return []core.Program{splitRows}
}

// learnRowPredProgs learns row predicates rb from positive row examples:
// per-column most specific common tokens, as prefix sequences of
// increasing length.
func learnRowPredProgs(_ context.Context, exs []core.Example) []core.Program {
	var rows []RectRegion
	for _, ex := range exs {
		v, _ := ex.State.Lookup(lambdaVar)
		row, ok := v.(RectRegion)
		if !ok || row.R1 != row.R2 {
			return nil
		}
		rows = append(rows, row)
	}
	out := []core.Program{rowPred{}}
	if len(rows) == 0 {
		return out
	}
	width := rows[0].C2 - rows[0].C1 + 1
	if width > 8 {
		width = 8
	}
	var specific []CellTok
	for j := 0; j < width; j++ {
		contents := make([]string, len(rows))
		for i, row := range rows {
			contents[i] = row.Doc.Grid.Cell(row.R1, row.C1+j)
		}
		specific = append(specific, mostSpecificCommon(rows[0].Doc, contents))
	}
	seen := map[string]bool{"λx: True": true}
	for l := 1; l <= len(specific); l++ {
		p := rowPred{toks: append([]CellTok(nil), specific[:l]...)}
		allAny := true
		for _, t := range p.toks {
			if t.Name != AnyCell.Name {
				allAny = false
			}
		}
		if allAny {
			continue
		}
		if key := p.String(); !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].(rowPred).Cost() < out[j].(rowPred).Cost()
	})
	return out
}

// ---- scalar learners over cells ----

// learnCellInRow learns λx: Cell(x, c) from examples binding x to a row
// and outputting a cell within it.
func learnCellInRow(_ context.Context, exs []core.Example) []core.Program {
	var rects []RectRegion
	var cells []CellRegion
	for _, ex := range exs {
		v, _ := ex.State.Lookup(lambdaVar)
		row, ok := v.(RectRegion)
		if !ok {
			return nil
		}
		cell, ok := ex.Output.(CellRegion)
		if !ok || !row.Contains(cell) {
			return nil
		}
		rects = append(rects, row)
		cells = append(cells, cell)
	}
	attrs := capCellAttrs(learnCellAttrs(rects, cells), attrCap)
	out := make([]core.Program, len(attrs))
	for i, a := range attrs {
		out[i] = cellRowMapF{c: a}
	}
	return out
}

// learnCellAttrs learns cell attributes locating each output cell within
// its rectangle: absolute row-major positions and predicate-relative
// positions (RegCell).
func learnCellAttrs(rects []RectRegion, cells []CellRegion) []cellAttr {
	if len(rects) == 0 || len(rects) != len(cells) {
		return nil
	}
	var out []cellAttr
	// AbsCell: consistent forward and backward row-major index.
	fwd, fwdOK, bwd, bwdOK := commonRowMajorIndex(rects, cells)
	if fwdOK {
		out = append(out, absCell{k: fwd})
	}
	if bwdOK {
		out = append(out, absCell{k: bwd})
	}
	// RegCell: predicate candidates from the output cells' neighbourhoods.
	d := cells[0].Doc
	for _, cb := range cellPredCandidates(d, cells) {
		if cb.isTrue() {
			continue
		}
		k, kNeg, ok := commonPredIndex(rects, cells, cb)
		if !ok {
			continue
		}
		out = append(out, regCell{cb: cb, k: k})
		if kNeg != k {
			out = append(out, regCell{cb: cb, k: kNeg})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].cost() < out[j].cost() })
	return out
}

// commonRowMajorIndex returns the forward and backward row-major indices
// of every cell within its rectangle, when consistent across examples.
func commonRowMajorIndex(rects []RectRegion, cells []CellRegion) (fwd int, fwdOK bool, bwd int, bwdOK bool) {
	for i := range rects {
		r, c := rects[i], cells[i]
		width := r.C2 - r.C1 + 1
		total := width * (r.R2 - r.R1 + 1)
		k := (c.R-r.R1)*width + (c.C - r.C1)
		kb := k - total
		if i == 0 {
			fwd, bwd, fwdOK, bwdOK = k, kb, true, true
			continue
		}
		if k != fwd {
			fwdOK = false
		}
		if kb != bwd {
			bwdOK = false
		}
	}
	return fwd, fwdOK, bwd, bwdOK
}

// commonPredIndex returns the 1-based (and negative, counted from the
// right) position of every cell among the predicate's matches within its
// rectangle, keeping whichever side is consistent across all examples.
func commonPredIndex(rects []RectRegion, cells []CellRegion, cb cellPred) (k, kNeg int, ok bool) {
	posOK, negOK := true, true
	for i := range rects {
		r, c := rects[i], cells[i]
		idx, count := 0, 0
		for _, cell := range cellsIn(r.Doc, r.R1, r.C1, r.R2, r.C2) {
			if cb.MatchesAt(r.Doc, cell.R, cell.C) {
				count++
				if cell == c {
					idx = count
				}
			}
		}
		if idx == 0 {
			return 0, 0, false
		}
		curNeg := idx - count - 1
		if i == 0 {
			k, kNeg = idx, curNeg
			continue
		}
		if idx != k {
			posOK = false
		}
		if curNeg != kNeg {
			negOK = false
		}
	}
	switch {
	case posOK && negOK:
		return k, kNeg, true
	case posOK:
		return k, k, true
	case negOK:
		return kNeg, kNeg, true
	default:
		return 0, 0, false
	}
}

// learnStartPairF learns λx: Pair(x, Cell(R0[x:], c)).
func learnStartPairF(_ context.Context, exs []core.Example) []core.Program {
	var rects []RectRegion
	var ends []CellRegion
	for _, ex := range exs {
		d, _, _, r2, c2, err := inputBounds(ex.State)
		if err != nil {
			return nil
		}
		v, _ := ex.State.Lookup(lambdaVar)
		x, ok := v.(CellRegion)
		if !ok {
			return nil
		}
		y, ok := ex.Output.(RectRegion)
		if !ok || y.R1 != x.R || y.C1 != x.C || y.R2 > r2 || y.C2 > c2 {
			return nil
		}
		rects = append(rects, RectRegion{Doc: d, R1: x.R, C1: x.C, R2: r2, C2: c2})
		ends = append(ends, CellRegion{Doc: d, R: y.R2, C: y.C2})
	}
	attrs := capCellAttrs(learnCellAttrs(rects, ends), attrCap)
	out := make([]core.Program, len(attrs))
	for i, a := range attrs {
		out[i] = startPairF{c: a}
	}
	return out
}

// learnEndPairF learns λx: Pair(Cell(R0[:x], c), x).
func learnEndPairF(_ context.Context, exs []core.Example) []core.Program {
	var rects []RectRegion
	var starts []CellRegion
	for _, ex := range exs {
		d, r1, c1, _, _, err := inputBounds(ex.State)
		if err != nil {
			return nil
		}
		v, _ := ex.State.Lookup(lambdaVar)
		x, ok := v.(CellRegion)
		if !ok {
			return nil
		}
		y, ok := ex.Output.(RectRegion)
		if !ok || y.R2 != x.R || y.C2 != x.C || y.R1 < r1 || y.C1 < c1 {
			return nil
		}
		rects = append(rects, RectRegion{Doc: d, R1: r1, C1: c1, R2: x.R, C2: x.C})
		starts = append(starts, CellRegion{Doc: d, R: y.R1, C: y.C1})
	}
	attrs := capCellAttrs(learnCellAttrs(rects, starts), attrCap)
	out := make([]core.Program, len(attrs))
	for i, a := range attrs {
		out[i] = endPairF{c: a}
	}
	return out
}

// learnPSStart is PS ::= StartSeqMap(λx: Pair(x, Cell(R0[x:], c)), CS).
func learnPSStart() core.SeqLearner {
	op := core.MapOp{
		Name: "StartSeqMap",
		Var:  lambdaVar,
		F:    learnStartPairF,
		S:    learnCS(),
		Decompose: func(st core.State, y []core.Value) ([]core.Value, error) {
			out := make([]core.Value, len(y))
			for i, v := range y {
				rect, ok := v.(RectRegion)
				if !ok {
					return nil, fmt.Errorf("sheetlang: StartSeqMap output is %T, want rect", v)
				}
				out[i] = CellRegion{Doc: rect.Doc, R: rect.R1, C: rect.C1}
			}
			return out, nil
		},
	}
	return op.Learn
}

// learnPSEnd is PS ::= EndSeqMap(λx: Pair(Cell(R0[:x], c), x), CS).
func learnPSEnd() core.SeqLearner {
	op := core.MapOp{
		Name: "EndSeqMap",
		Var:  lambdaVar,
		F:    learnEndPairF,
		S:    learnCS(),
		Decompose: func(st core.State, y []core.Value) ([]core.Value, error) {
			out := make([]core.Value, len(y))
			for i, v := range y {
				rect, ok := v.(RectRegion)
				if !ok {
					return nil, fmt.Errorf("sheetlang: EndSeqMap output is %T, want rect", v)
				}
				out[i] = CellRegion{Doc: rect.Doc, R: rect.R2, C: rect.C2}
			}
			return out, nil
		},
	}
	return op.Learn
}

// ---- adapters to the engine interfaces ----

type seqProgram struct{ p core.Program }

func (sp seqProgram) ExtractSeq(r region.Region) ([]region.Region, error) {
	return sp.extract(r, nil)
}

// ExtractSeqCaptured runs the program with an execution capture attached,
// recording the operator path of every emitted region (provenance).
func (sp seqProgram) ExtractSeqCaptured(r region.Region, c *core.ExecCapture) ([]region.Region, error) {
	return sp.extract(r, c)
}

func (sp seqProgram) extract(r region.Region, c *core.ExecCapture) ([]region.Region, error) {
	if _, _, _, _, _, ok := bounds(r); !ok {
		return nil, fmt.Errorf("sheetlang: input is %T, want a sheet region", r)
	}
	st := core.NewState(r)
	if c != nil {
		st = st.WithCapture(c)
	}
	v, err := sp.p.Exec(st)
	if err != nil {
		return nil, err
	}
	seq, err := core.AsSeq(v)
	if err != nil {
		return nil, err
	}
	out := make([]region.Region, len(seq))
	for i, e := range seq {
		er, ok := e.(region.Region)
		if !ok {
			return nil, fmt.Errorf("sheetlang: program produced %T, want region", e)
		}
		out[i] = er
	}
	return out, nil
}

func (sp seqProgram) String() string { return sp.p.String() }

type regProgram struct{ p core.Program }

func (rp regProgram) Extract(r region.Region) (region.Region, error) {
	return rp.extract(r, nil)
}

// ExtractCaptured runs the program with an execution capture attached.
func (rp regProgram) ExtractCaptured(r region.Region, c *core.ExecCapture) (region.Region, error) {
	return rp.extract(r, c)
}

func (rp regProgram) extract(r region.Region, c *core.ExecCapture) (region.Region, error) {
	st := core.NewState(r)
	if c != nil {
		st = st.WithCapture(c)
	}
	v, err := rp.p.Exec(st)
	if err != nil {
		return nil, nil // null instance
	}
	er, ok := v.(region.Region)
	if !ok {
		return nil, fmt.Errorf("sheetlang: program produced %T, want region", v)
	}
	return er, nil
}

func (rp regProgram) String() string { return rp.p.String() }
