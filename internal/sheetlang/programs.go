package sheetlang

import (
	"fmt"
	"strings"

	"flashextract/internal/core"
	"flashextract/internal/region"
)

// lambdaVar is the λ-bound variable name of the Lsps map and filter
// operators.
const lambdaVar = "x"

// inputBounds resolves the rectangular bounds of the input region R0.
func inputBounds(st core.State) (d *Document, r1, c1, r2, c2 int, err error) {
	rr, ok := st.Input().(region.Region)
	if !ok {
		return nil, 0, 0, 0, 0, fmt.Errorf("sheetlang: input is %T, want a sheet region", st.Input())
	}
	d, r1, c1, r2, c2, ok = bounds(rr)
	if !ok {
		return nil, 0, 0, 0, 0, fmt.Errorf("sheetlang: input is %T, want a sheet region", st.Input())
	}
	return d, r1, c1, r2, c2, nil
}

// splitCellsProg is the fixed expression splitcells(R0): the cells of R0
// in row-major order.
type splitCellsProg struct{}

// splitCells is the canonical instance of splitcells(R0).
var splitCells = splitCellsProg{}

// Exec lists the input's cells in row-major order.
func (splitCellsProg) Exec(st core.State) (core.Value, error) {
	d, r1, c1, r2, c2, err := inputBounds(st)
	if err != nil {
		return nil, err
	}
	cells := cellsIn(d, r1, c1, r2, c2)
	out := make([]core.Value, len(cells))
	for i, c := range cells {
		out[i] = c
	}
	return out, nil
}

func (splitCellsProg) String() string { return "splitcells(R0)" }

// Cost makes the fixed expression free for ranking purposes.
func (splitCellsProg) Cost() int { return 0 }

// splitRowsProg is the fixed expression splitrows(R0): the row rectangles
// of R0.
type splitRowsProg struct{}

// splitRows is the canonical instance of splitrows(R0).
var splitRows = splitRowsProg{}

// Exec lists the input's row rectangles.
func (splitRowsProg) Exec(st core.State) (core.Value, error) {
	d, r1, c1, r2, c2, err := inputBounds(st)
	if err != nil {
		return nil, err
	}
	rows := rowsIn(d, r1, c1, r2, c2)
	out := make([]core.Value, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out, nil
}

func (splitRowsProg) String() string { return "splitrows(R0)" }

// Cost makes the fixed expression free for ranking purposes.
func (splitRowsProg) Cost() int { return 0 }

// neighborhood lists the nine Surround offsets in reading order.
var neighborhood = [9][2]int{
	{-1, -1}, {-1, 0}, {-1, 1},
	{0, -1}, {0, 0}, {0, 1},
	{1, -1}, {1, 0}, {1, 1},
}

// cellPred is the cell boolean cb ::= True | Surround(T{9}, x): nine
// tokens matched against a cell's content and its eight neighbours
// (out-of-grid neighbours read as empty).
type cellPred struct {
	toks [9]CellTok
}

func truePred() cellPred {
	var p cellPred
	for i := range p.toks {
		p.toks[i] = AnyCell
	}
	return p
}

func (p cellPred) isTrue() bool {
	for _, t := range p.toks {
		if t.Name != AnyCell.Name {
			return false
		}
	}
	return true
}

// MatchesAt reports whether the predicate accepts the cell at (r, c).
func (p cellPred) MatchesAt(d *Document, r, c int) bool {
	for i, off := range neighborhood {
		if !p.toks[i].Matches(d.Grid.Cell(r+off[0], c+off[1])) {
			return false
		}
	}
	return true
}

// Exec evaluates the predicate on the λ-bound cell.
func (p cellPred) Exec(st core.State) (core.Value, error) {
	v, ok := st.Lookup(lambdaVar)
	if !ok {
		return nil, fmt.Errorf("sheetlang: free variable %s is unbound", lambdaVar)
	}
	x, ok := v.(CellRegion)
	if !ok {
		return nil, fmt.Errorf("sheetlang: %s is %T, want a cell", lambdaVar, v)
	}
	return p.MatchesAt(x.Doc, x.R, x.C), nil
}

func (p cellPred) String() string {
	if p.isTrue() {
		return "λx: True"
	}
	names := make([]string, 9)
	for i, t := range p.toks {
		names[i] = t.Name
	}
	return "λx: Surround([" + strings.Join(names, " ") + "], x)"
}

// Cost ranks selective predicates before the vacuous True.
func (p cellPred) Cost() int {
	if p.isTrue() {
		return 6
	}
	c := 0
	for _, t := range p.toks {
		c += t.weight
	}
	return c
}

// rowPred is the row boolean rb ::= True | Sequence(T+, x): tokens matched
// against the contents of consecutive cells at the start of the row.
type rowPred struct {
	toks []CellTok // empty means True
}

// MatchesRow reports whether the predicate accepts a row rectangle.
func (p rowPred) MatchesRow(x RectRegion) bool {
	for i, t := range p.toks {
		if !t.Matches(x.Doc.Grid.Cell(x.R1, x.C1+i)) {
			return false
		}
	}
	return true
}

// Exec evaluates the predicate on the λ-bound row.
func (p rowPred) Exec(st core.State) (core.Value, error) {
	v, ok := st.Lookup(lambdaVar)
	if !ok {
		return nil, fmt.Errorf("sheetlang: free variable %s is unbound", lambdaVar)
	}
	x, ok := v.(RectRegion)
	if !ok || x.R1 != x.R2 {
		return nil, fmt.Errorf("sheetlang: %s is %T, want a row", lambdaVar, v)
	}
	return p.MatchesRow(x), nil
}

func (p rowPred) String() string {
	if len(p.toks) == 0 {
		return "λx: True"
	}
	names := make([]string, len(p.toks))
	for i, t := range p.toks {
		names[i] = t.Name
	}
	return "λx: Sequence([" + strings.Join(names, " ") + "], x)"
}

// Cost ranks selective predicates before the vacuous True.
func (p rowPred) Cost() int {
	if len(p.toks) == 0 {
		return 6
	}
	c := 0
	for _, t := range p.toks {
		c += t.weight
	}
	return c
}

// cellAttr is the cell attribute c ::= AbsCell(k) | RegCell(cb, k),
// resolving to a cell within a rectangle.
type cellAttr interface {
	eval(d *Document, r1, c1, r2, c2 int) (CellRegion, error)
	String() string
	cost() int
}

// absCell selects the k-th cell of the rectangle in row-major order
// (negative k counts from the end).
type absCell struct {
	k int
}

func (a absCell) eval(d *Document, r1, c1, r2, c2 int) (CellRegion, error) {
	width := c2 - c1 + 1
	total := width * (r2 - r1 + 1)
	k := a.k
	if k < 0 {
		k = total + k
	}
	if k < 0 || k >= total {
		return CellRegion{}, core.ErrNoMatch
	}
	return CellRegion{Doc: d, R: r1 + k/width, C: c1 + k%width}, nil
}

func (a absCell) String() string { return fmt.Sprintf("AbsCell(%d)", a.k) }

func (a absCell) cost() int {
	if a.k == 0 || a.k == -1 {
		return 0
	}
	return 2
}

// regCell selects the k-th cell of the rectangle (row-major, 1-based;
// negative k counts from the right) among those matching the predicate.
type regCell struct {
	cb cellPred
	k  int
}

func (a regCell) eval(d *Document, r1, c1, r2, c2 int) (CellRegion, error) {
	var matches []CellRegion
	for _, cell := range cellsIn(d, r1, c1, r2, c2) {
		if a.cb.MatchesAt(d, cell.R, cell.C) {
			matches = append(matches, cell)
		}
	}
	idx := a.k - 1
	if a.k < 0 {
		idx = len(matches) + a.k
	}
	if a.k == 0 || idx < 0 || idx >= len(matches) {
		return CellRegion{}, core.ErrNoMatch
	}
	return matches[idx], nil
}

func (a regCell) String() string { return fmt.Sprintf("RegCell(%s, %d)", a.cb, a.k) }

func (a regCell) cost() int {
	k := a.k
	if k < 0 {
		k = -k
	}
	return 1 + a.cb.Cost() + (k - 1)
}

// cellRowMapF is λx: Cell(x, c) — the map function of CellRowMap,
// selecting a cell within the row x.
type cellRowMapF struct {
	c cellAttr
}

func (p cellRowMapF) Exec(st core.State) (core.Value, error) {
	v, _ := st.Lookup(lambdaVar)
	x, ok := v.(RectRegion)
	if !ok {
		return nil, fmt.Errorf("sheetlang: %s is %T, want a row", lambdaVar, v)
	}
	return p.c.eval(x.Doc, x.R1, x.C1, x.R2, x.C2)
}

func (p cellRowMapF) String() string { return fmt.Sprintf("Cell(x, %s)", p.c) }

// Cost defers to the attribute.
func (p cellRowMapF) Cost() int { return p.c.cost() }

// startPairF is λx: Pair(x, Cell(R0[x:], c)) — pairing a start cell with
// an end cell located in the rectangle from x to R0's bottom-right corner.
type startPairF struct {
	c cellAttr
}

func (p startPairF) Exec(st core.State) (core.Value, error) {
	d, _, _, r2, c2, err := inputBounds(st)
	if err != nil {
		return nil, err
	}
	v, _ := st.Lookup(lambdaVar)
	x, ok := v.(CellRegion)
	if !ok {
		return nil, fmt.Errorf("sheetlang: %s is %T, want a cell", lambdaVar, v)
	}
	end, err := p.c.eval(d, x.R, x.C, r2, c2)
	if err != nil {
		return nil, err
	}
	if end.R < x.R || end.C < x.C {
		return nil, core.ErrNoMatch
	}
	return RectRegion{Doc: d, R1: x.R, C1: x.C, R2: end.R, C2: end.C}, nil
}

func (p startPairF) String() string { return fmt.Sprintf("Pair(x, Cell(R0[x:], %s))", p.c) }

// Cost carries a small bias (see the text instantiation).
func (p startPairF) Cost() int { return p.c.cost() + 1 }

// endPairF is λx: Pair(Cell(R0[:x], c), x) — pairing an end cell with a
// start cell located in the rectangle from R0's top-left corner to x.
type endPairF struct {
	c cellAttr
}

func (p endPairF) Exec(st core.State) (core.Value, error) {
	d, r1, c1, _, _, err := inputBounds(st)
	if err != nil {
		return nil, err
	}
	v, _ := st.Lookup(lambdaVar)
	x, ok := v.(CellRegion)
	if !ok {
		return nil, fmt.Errorf("sheetlang: %s is %T, want a cell", lambdaVar, v)
	}
	start, err := p.c.eval(d, r1, c1, x.R, x.C)
	if err != nil {
		return nil, err
	}
	if start.R > x.R || start.C > x.C {
		return nil, core.ErrNoMatch
	}
	return RectRegion{Doc: d, R1: start.R, C1: start.C, R2: x.R, C2: x.C}, nil
}

func (p endPairF) String() string { return fmt.Sprintf("Pair(Cell(R0[:x], %s), x)", p.c) }

// Cost carries the same bias as startPairF.
func (p endPairF) Cost() int { return p.c.cost() + 1 }

// cellProg is the N2 expression Cell(R0, c): a single cell within R0.
type cellProg struct {
	c cellAttr
}

func (p cellProg) Exec(st core.State) (core.Value, error) {
	d, r1, c1, r2, c2, err := inputBounds(st)
	if err != nil {
		return nil, err
	}
	return p.c.eval(d, r1, c1, r2, c2)
}

func (p cellProg) String() string { return fmt.Sprintf("Cell(R0, %s)", p.c) }

// Cost defers to the attribute.
func (p cellProg) Cost() int { return p.c.cost() }

// cellPairProg is the N2 expression Pair(Cell(R0,c1), Cell(R0,c2)): a
// rectangle within R0.
type cellPairProg struct {
	c1, c2 cellAttr
}

func (p cellPairProg) Exec(st core.State) (core.Value, error) {
	d, r1, c1, r2, c2, err := inputBounds(st)
	if err != nil {
		return nil, err
	}
	a, err := p.c1.eval(d, r1, c1, r2, c2)
	if err != nil {
		return nil, err
	}
	b, err := p.c2.eval(d, r1, c1, r2, c2)
	if err != nil {
		return nil, err
	}
	if b.R < a.R || b.C < a.C {
		return nil, core.ErrNoMatch
	}
	return RectRegion{Doc: d, R1: a.R, C1: a.C, R2: b.R, C2: b.C}, nil
}

func (p cellPairProg) String() string {
	return fmt.Sprintf("Pair(Cell(R0, %s), Cell(R0, %s))", p.c1, p.c2)
}

// Cost is the cost of the two attributes.
func (p cellPairProg) Cost() int { return p.c1.cost() + p.c2.cost() }
