package sheetlang

import (
	"flashextract/internal/core"
	"flashextract/internal/prefilter"
)

// This file exposes Lsps programs to the batch prefilter. Grid cells are
// loaded from CSV, where cell content bytes appear verbatim except that
// '"' is written doubled — so literal cell tokens yield substring
// requirements on the raw CSV and content-class tokens yield byte masks.

// CoreProgram exposes the compiled combinator tree for static analysis.
func (p seqProgram) CoreProgram() core.Program { return p.p }

// CoreProgram exposes the compiled combinator tree for static analysis.
func (p regProgram) CoreProgram() core.Program { return p.p }

// numericMask holds the bytes a Numeric cell is guaranteed to contribute:
// isNumeric requires at least one digit.
var numericMask = func() prefilter.ByteMask {
	var m prefilter.ByteMask
	for b := byte('0'); b <= '9'; b++ {
		m.Set(b)
	}
	return m
}()

// alphaMask holds the non-space bytes an Alpha cell may consist of;
// isAlphaCell demands a non-empty trim, so at least one is present.
var alphaMask = func() prefilter.ByteMask {
	var m prefilter.ByteMask
	for b := byte('a'); b <= 'z'; b++ {
		m.Set(b)
	}
	for b := byte('A'); b <= 'Z'; b++ {
		m.Set(b)
	}
	for _, b := range []byte{'.', '&', '-', '\''} {
		m.Set(b)
	}
	return m
}()

// nonWhitespaceMask holds every byte except ASCII whitespace: the first
// byte of a TrimSpace-surviving rune is never one of these whitespace
// bytes, so a NonEmpty cell guarantees one byte from this mask.
var nonWhitespaceMask = func() prefilter.ByteMask {
	var m prefilter.ByteMask
	for b := 0; b < 256; b++ {
		switch byte(b) {
		case ' ', '\t', '\n', '\v', '\f', '\r':
		default:
			m.Set(byte(b))
		}
	}
	return m
}()

// condCellTok derives what the CSV must contain for some in-grid cell to
// satisfy the token. Tokens that accept the empty string give no
// information: a matching neighbour may lie outside the grid, where
// reads yield "".
func condCellTok(t CellTok) prefilter.Cond {
	if t.isLit {
		if t.lit == "" {
			return prefilter.True()
		}
		return prefilter.CondCellLiteral(t.lit)
	}
	switch t.Name {
	case NumericCell.Name:
		return prefilter.CondByteMask(numericMask, 1)
	case AlphaCell.Name:
		return prefilter.CondByteMask(alphaMask, 1)
	case NonEmptyCell.Name:
		return prefilter.CondByteMask(nonWhitespaceMask, 1)
	default: // Any, Empty: satisfied by blank or out-of-grid cells
		return prefilter.True()
	}
}

// AdmissionCond: a matching cell needs all nine neighbourhood tokens to
// hold simultaneously, each witnessed somewhere in the sheet.
func (p cellPred) AdmissionCond() prefilter.Cond {
	c := prefilter.True()
	for _, t := range p.toks {
		c = prefilter.And(c, condCellTok(t))
	}
	return c
}

// AdmissionCond: a matching row needs every prefix token to hold.
func (p rowPred) AdmissionCond() prefilter.Cond {
	c := prefilter.True()
	for _, t := range p.toks {
		c = prefilter.And(c, condCellTok(t))
	}
	return c
}

// condCellAttr derives the admission condition of a cell attribute.
func condCellAttr(c cellAttr) prefilter.Cond {
	switch v := c.(type) {
	case absCell:
		return prefilter.True()
	case regCell:
		if v.k == 0 {
			return prefilter.False() // RegCell with k = 0 never matches
		}
		return v.cb.AdmissionCond()
	}
	return prefilter.True()
}

// AdmissionCond: the mapped cell attribute must resolve within the row.
func (p cellRowMapF) AdmissionCond() prefilter.Cond {
	return condCellAttr(p.c)
}

// AdmissionCond: the end cell attribute must resolve.
func (p startPairF) AdmissionCond() prefilter.Cond {
	return condCellAttr(p.c)
}

// AdmissionCond: the start cell attribute must resolve.
func (p endPairF) AdmissionCond() prefilter.Cond {
	return condCellAttr(p.c)
}

// AdmissionCond: the cell attribute must resolve within the region.
func (p cellProg) AdmissionCond() prefilter.Cond {
	return condCellAttr(p.c)
}

// AdmissionCond: both corner attributes must resolve.
func (p cellPairProg) AdmissionCond() prefilter.Cond {
	return prefilter.And(condCellAttr(p.c1), condCellAttr(p.c2))
}
