package sheetlang

import (
	"encoding/json"
	"fmt"

	"flashextract/internal/core"
	"flashextract/internal/engine"
)

// This file implements program serialization for Lsps (see core.Encode).

// cellTokSpec is the serializable form of a cell token.
type cellTokSpec struct {
	Kind  string `json:"kind"` // "std" or "lit"
	Value string `json:"value"`
}

var standardCellToks = map[string]CellTok{
	AnyCell.Name: AnyCell, EmptyCell.Name: EmptyCell, NonEmptyCell.Name: NonEmptyCell,
	NumericCell.Name: NumericCell, AlphaCell.Name: AlphaCell,
}

func (t CellTok) spec() cellTokSpec {
	if t.isLit {
		return cellTokSpec{Kind: "lit", Value: t.lit}
	}
	return cellTokSpec{Kind: "std", Value: t.Name}
}

func cellTokFromSpec(s cellTokSpec) (CellTok, error) {
	switch s.Kind {
	case "lit":
		return LiteralCell(s.Value), nil
	case "std":
		t, ok := standardCellToks[s.Value]
		if !ok {
			return CellTok{}, fmt.Errorf("sheetlang: unknown standard cell token %q", s.Value)
		}
		return t, nil
	default:
		return CellTok{}, fmt.Errorf("sheetlang: unknown cell token kind %q", s.Kind)
	}
}

func marshalCellToks(toks []CellTok) (string, error) {
	specs := make([]cellTokSpec, len(toks))
	for i, t := range toks {
		specs[i] = t.spec()
	}
	b, err := json.Marshal(specs)
	return string(b), err
}

func unmarshalCellToks(s string) ([]CellTok, error) {
	var specs []cellTokSpec
	if err := json.Unmarshal([]byte(s), &specs); err != nil {
		return nil, err
	}
	out := make([]CellTok, len(specs))
	for i, sp := range specs {
		t, err := cellTokFromSpec(sp)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// cellAttrSpec is the serializable form of a cell attribute.
type cellAttrSpec struct {
	Kind string `json:"kind"` // "abs" or "reg"
	K    int    `json:"k"`
	CB   string `json:"cb,omitempty"` // cell predicate tokens for "reg"
}

func marshalCellAttr(a cellAttr) (string, error) {
	switch v := a.(type) {
	case absCell:
		b, err := json.Marshal(cellAttrSpec{Kind: "abs", K: v.k})
		return string(b), err
	case regCell:
		cb, err := marshalCellToks(v.cb.toks[:])
		if err != nil {
			return "", err
		}
		b, err := json.Marshal(cellAttrSpec{Kind: "reg", K: v.k, CB: cb})
		return string(b), err
	default:
		return "", fmt.Errorf("sheetlang: unknown cell attribute %T", a)
	}
}

func unmarshalCellAttr(s string) (cellAttr, error) {
	var spec cellAttrSpec
	if err := json.Unmarshal([]byte(s), &spec); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case "abs":
		return absCell{k: spec.K}, nil
	case "reg":
		toks, err := unmarshalCellToks(spec.CB)
		if err != nil {
			return nil, err
		}
		if len(toks) != 9 {
			return nil, fmt.Errorf("sheetlang: cell predicate needs 9 tokens, got %d", len(toks))
		}
		var cb cellPred
		copy(cb.toks[:], toks)
		return regCell{cb: cb, k: spec.K}, nil
	default:
		return nil, fmt.Errorf("sheetlang: unknown cell attribute kind %q", spec.Kind)
	}
}

// EncodeProgram serializes the fixed splitcells expression.
func (splitCellsProg) EncodeProgram() (core.ProgramSpec, error) {
	return core.ProgramSpec{Op: "sheet.splitcells"}, nil
}

// EncodeProgram serializes the fixed splitrows expression.
func (splitRowsProg) EncodeProgram() (core.ProgramSpec, error) {
	return core.ProgramSpec{Op: "sheet.splitrows"}, nil
}

// EncodeProgram serializes a cell predicate.
func (p cellPred) EncodeProgram() (core.ProgramSpec, error) {
	toks, err := marshalCellToks(p.toks[:])
	if err != nil {
		return core.ProgramSpec{}, err
	}
	return core.ProgramSpec{Op: "sheet.cellPred", Attrs: map[string]string{"toks": toks}}, nil
}

// EncodeProgram serializes a row predicate.
func (p rowPred) EncodeProgram() (core.ProgramSpec, error) {
	toks, err := marshalCellToks(p.toks)
	if err != nil {
		return core.ProgramSpec{}, err
	}
	return core.ProgramSpec{Op: "sheet.rowPred", Attrs: map[string]string{"toks": toks}}, nil
}

func cellAttrProgSpec(op string, c cellAttr) (core.ProgramSpec, error) {
	a, err := marshalCellAttr(c)
	if err != nil {
		return core.ProgramSpec{}, err
	}
	return core.ProgramSpec{Op: op, Attrs: map[string]string{"c": a}}, nil
}

// EncodeProgram serializes the CellRowMap function.
func (p cellRowMapF) EncodeProgram() (core.ProgramSpec, error) {
	return cellAttrProgSpec("sheet.cellRowMapF", p.c)
}

// EncodeProgram serializes the StartSeqMap function.
func (p startPairF) EncodeProgram() (core.ProgramSpec, error) {
	return cellAttrProgSpec("sheet.startPairF", p.c)
}

// EncodeProgram serializes the EndSeqMap function.
func (p endPairF) EncodeProgram() (core.ProgramSpec, error) {
	return cellAttrProgSpec("sheet.endPairF", p.c)
}

// EncodeProgram serializes the N2 single-cell expression.
func (p cellProg) EncodeProgram() (core.ProgramSpec, error) {
	return cellAttrProgSpec("sheet.cell", p.c)
}

// EncodeProgram serializes the N2 cell-pair expression.
func (p cellPairProg) EncodeProgram() (core.ProgramSpec, error) {
	a1, err := marshalCellAttr(p.c1)
	if err != nil {
		return core.ProgramSpec{}, err
	}
	a2, err := marshalCellAttr(p.c2)
	if err != nil {
		return core.ProgramSpec{}, err
	}
	return core.ProgramSpec{Op: "sheet.cellPair", Attrs: map[string]string{"c1": a1, "c2": a2}}, nil
}

// decodeLeaf reconstructs Lsps leaf programs.
func decodeLeaf(spec core.ProgramSpec) (core.Program, error) {
	switch spec.Op {
	case "sheet.splitcells":
		return splitCells, nil
	case "sheet.splitrows":
		return splitRows, nil
	case "sheet.cellPred":
		toks, err := unmarshalCellToks(spec.Attrs["toks"])
		if err != nil {
			return nil, err
		}
		if len(toks) != 9 {
			return nil, fmt.Errorf("sheetlang: cell predicate needs 9 tokens, got %d", len(toks))
		}
		var p cellPred
		copy(p.toks[:], toks)
		return p, nil
	case "sheet.rowPred":
		toks, err := unmarshalCellToks(spec.Attrs["toks"])
		if err != nil {
			return nil, err
		}
		return rowPred{toks: toks}, nil
	case "sheet.cellRowMapF", "sheet.startPairF", "sheet.endPairF", "sheet.cell":
		c, err := unmarshalCellAttr(spec.Attrs["c"])
		if err != nil {
			return nil, err
		}
		switch spec.Op {
		case "sheet.cellRowMapF":
			return cellRowMapF{c: c}, nil
		case "sheet.startPairF":
			return startPairF{c: c}, nil
		case "sheet.endPairF":
			return endPairF{c: c}, nil
		default:
			return cellProg{c: c}, nil
		}
	case "sheet.cellPair":
		c1, err := unmarshalCellAttr(spec.Attrs["c1"])
		if err != nil {
			return nil, err
		}
		c2, err := unmarshalCellAttr(spec.Attrs["c2"])
		if err != nil {
			return nil, err
		}
		return cellPairProg{c1: c1, c2: c2}, nil
	default:
		return nil, fmt.Errorf("sheetlang: unknown leaf operator %q", spec.Op)
	}
}

func decodeContext() core.DecodeContext {
	return core.DecodeContext{Leaf: decodeLeaf, Less: sheetLess}
}

// MarshalSeqProgram implements engine.ProgramCodec.
func (l *lang) MarshalSeqProgram(p engine.SeqRegionProgram) ([]byte, error) {
	sp, ok := p.(seqProgram)
	if !ok {
		return nil, fmt.Errorf("sheetlang: cannot serialize foreign program %T", p)
	}
	return core.MarshalProgram(sp.p)
}

// UnmarshalSeqProgram implements engine.ProgramCodec.
func (l *lang) UnmarshalSeqProgram(data []byte) (engine.SeqRegionProgram, error) {
	p, err := decodeContext().UnmarshalProgram(data)
	if err != nil {
		return nil, err
	}
	return seqProgram{p}, nil
}

// MarshalRegionProgram implements engine.ProgramCodec.
func (l *lang) MarshalRegionProgram(p engine.RegionProgram) ([]byte, error) {
	rp, ok := p.(regProgram)
	if !ok {
		return nil, fmt.Errorf("sheetlang: cannot serialize foreign program %T", p)
	}
	return core.MarshalProgram(rp.p)
}

// UnmarshalRegionProgram implements engine.ProgramCodec.
func (l *lang) UnmarshalRegionProgram(data []byte) (engine.RegionProgram, error) {
	p, err := decodeContext().UnmarshalProgram(data)
	if err != nil {
		return nil, err
	}
	return regProgram{p}, nil
}
