package sheetlang

import (
	"fmt"
	"strings"
)

// CellTok matches the entire content of one cell. The spreadsheet
// instantiation matches cell neighbourhoods (Surround) and row prefixes
// (Sequence) against these tokens.
type CellTok struct {
	// Name is the token's display name.
	Name string
	// class is non-nil for content-class tokens.
	class func(string) bool
	// lit holds the exact content for literal tokens.
	lit   string
	isLit bool
	// weight is the ranking cost contribution of the token.
	weight int
}

// The standard cell token set.
var (
	// AnyCell matches every cell (the wildcard slot of a Surround).
	AnyCell = CellTok{Name: "Any", class: func(string) bool { return true }, weight: 0}
	// EmptyCell matches blank cells (and out-of-grid neighbours).
	EmptyCell = CellTok{Name: "Empty", class: func(s string) bool { return strings.TrimSpace(s) == "" }, weight: 1}
	// NonEmptyCell matches cells with any content.
	NonEmptyCell = CellTok{Name: "NonEmpty", class: func(s string) bool { return strings.TrimSpace(s) != "" }, weight: 1}
	// NumericCell matches integer or decimal contents.
	NumericCell = CellTok{Name: "Numeric", class: isNumeric, weight: 1}
	// AlphaCell matches contents of letters and spaces only (non-empty).
	AlphaCell = CellTok{Name: "Alpha", class: isAlphaCell, weight: 1}
)

// LiteralCell matches the exact content s.
func LiteralCell(s string) CellTok {
	return CellTok{Name: fmt.Sprintf("Lit(%s)", s), lit: s, isLit: true, weight: 3}
}

// Matches reports whether the token accepts the cell content.
func (t CellTok) Matches(content string) bool {
	if t.isLit {
		return content == t.lit
	}
	return t.class(content)
}

func (t CellTok) String() string { return t.Name }

func isNumeric(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" {
		return false
	}
	i, digits, dot := 0, false, false
	if s[0] == '-' || s[0] == '+' {
		i = 1
	}
	for ; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
			digits = true
		case s[i] == '.' && !dot:
			dot = true
		case s[i] == ',': // thousands separator
		default:
			return false
		}
	}
	return digits
}

func isAlphaCell(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == ' ' || c == '.' || c == '&' || c == '-' || c == '\'') {
			return false
		}
	}
	return true
}

// mostSpecificCommon returns the most specific standard token (or literal)
// matching all of the given contents. Equal contents are promoted to a
// literal token only when the content recurs in the sheet — like the
// dynamic tokens of the text instantiation, literals exist to capture
// recurring labels (“Subtotal”, “Department:”), not incidental values.
func mostSpecificCommon(d *Document, contents []string) CellTok {
	if len(contents) == 0 {
		return AnyCell
	}
	allEqual := true
	for _, s := range contents[1:] {
		if s != contents[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		if strings.TrimSpace(contents[0]) == "" {
			return EmptyCell
		}
		if d.contentCount(contents[0]) >= 2 {
			return LiteralCell(contents[0])
		}
	}
	for _, t := range []CellTok{NumericCell, AlphaCell, EmptyCell, NonEmptyCell} {
		ok := true
		for _, s := range contents {
			if !t.Matches(s) {
				ok = false
				break
			}
		}
		if ok {
			return t
		}
	}
	return AnyCell
}
