package sheetlang

import (
	"flashextract/internal/abstract"
	"flashextract/internal/core"
)

// Abstraction transformers of the Lsps leaf programs (see internal/core's
// AbstractEval seam and DESIGN.md "Abstraction-guided pruning"). Split
// counts are exact rectangle arithmetic; cell attributes are checked for
// index feasibility against the rectangle's cell count. Sheet regions do
// not implement core.Interval, so spans carry no rejection power and every
// feasible result is ⊤-spanned.

// AbstractSeq of splitcells(R0): the cell count is exact rectangle
// arithmetic.
func (splitCellsProg) AbstractSeq(_ *abstract.Ctx, st core.State) abstract.Seq {
	_, r1, c1, r2, c2, err := inputBounds(st)
	if err != nil {
		return abstract.InfeasibleSeq()
	}
	n := (r2 - r1 + 1) * (c2 - c1 + 1)
	return abstract.Seq{Count: abstract.Exact(n), Span: abstract.TopSpan()}
}

// AbstractSeq of splitrows(R0): the row count is exact.
func (splitRowsProg) AbstractSeq(_ *abstract.Ctx, st core.State) abstract.Seq {
	_, r1, _, r2, _, err := inputBounds(st)
	if err != nil {
		return abstract.InfeasibleSeq()
	}
	return abstract.Seq{Count: abstract.Exact(r2 - r1 + 1), Span: abstract.TopSpan()}
}

// cellAttrFeasible reports whether a cell attribute can possibly resolve
// within the rectangle: AbsCell by index arithmetic against the cell count,
// RegCell because its matching cells are a subset of the rectangle's cells
// (so |k| beyond the cell count can never resolve, and k=0 never does).
// true means "cannot disprove", never "will match".
func cellAttrFeasible(a cellAttr, r1, c1, r2, c2 int) bool {
	total := (r2 - r1 + 1) * (c2 - c1 + 1)
	switch v := a.(type) {
	case absCell:
		k := v.k
		if k < 0 {
			k = total + k
		}
		return k >= 0 && k < total
	case regCell:
		k := v.k
		if k < 0 {
			k = -k
		}
		return v.k != 0 && k <= total
	}
	return true
}

// AbstractScalar of λx: Cell(x, c) over a row rectangle.
func (p cellRowMapF) AbstractScalar(_ *abstract.Ctx, st core.State) abstract.Scalar {
	v, _ := st.Lookup(lambdaVar)
	x, ok := v.(RectRegion)
	if !ok {
		return abstract.InfeasibleScalar()
	}
	if !cellAttrFeasible(p.c, x.R1, x.C1, x.R2, x.C2) {
		return abstract.InfeasibleScalar()
	}
	return abstract.TopScalar()
}

// AbstractScalar of λx: Pair(x, Cell(R0[x:], c)): the end cell is sought in
// the rectangle from x to R0's bottom-right corner.
func (p startPairF) AbstractScalar(_ *abstract.Ctx, st core.State) abstract.Scalar {
	_, _, _, r2, c2, err := inputBounds(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	v, _ := st.Lookup(lambdaVar)
	x, ok := v.(CellRegion)
	if !ok {
		return abstract.InfeasibleScalar()
	}
	if !cellAttrFeasible(p.c, x.R, x.C, r2, c2) {
		return abstract.InfeasibleScalar()
	}
	return abstract.TopScalar()
}

// AbstractScalar of λx: Pair(Cell(R0[:x], c), x): the mirror of startPairF.
func (p endPairF) AbstractScalar(_ *abstract.Ctx, st core.State) abstract.Scalar {
	_, r1, c1, _, _, err := inputBounds(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	v, _ := st.Lookup(lambdaVar)
	x, ok := v.(CellRegion)
	if !ok {
		return abstract.InfeasibleScalar()
	}
	if !cellAttrFeasible(p.c, r1, c1, x.R, x.C) {
		return abstract.InfeasibleScalar()
	}
	return abstract.TopScalar()
}

// AbstractScalar of the N2 expression Cell(R0, c).
func (p cellProg) AbstractScalar(_ *abstract.Ctx, st core.State) abstract.Scalar {
	_, r1, c1, r2, c2, err := inputBounds(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	if !cellAttrFeasible(p.c, r1, c1, r2, c2) {
		return abstract.InfeasibleScalar()
	}
	return abstract.TopScalar()
}

// AbstractScalar of the N2 expression Pair(Cell(R0,c1), Cell(R0,c2)).
func (p cellPairProg) AbstractScalar(_ *abstract.Ctx, st core.State) abstract.Scalar {
	_, r1, c1, r2, c2, err := inputBounds(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	if !cellAttrFeasible(p.c1, r1, c1, r2, c2) || !cellAttrFeasible(p.c2, r1, c1, r2, c2) {
		return abstract.InfeasibleScalar()
	}
	return abstract.TopScalar()
}

// Interface conformance: the compiler pins every transformer to the seam.
var (
	_ core.AbstractSeqProgram    = splitCellsProg{}
	_ core.AbstractSeqProgram    = splitRowsProg{}
	_ core.AbstractScalarProgram = cellRowMapF{}
	_ core.AbstractScalarProgram = startPairF{}
	_ core.AbstractScalarProgram = endPairF{}
	_ core.AbstractScalarProgram = cellProg{}
	_ core.AbstractScalarProgram = cellPairProg{}
)
