package sheetlang

import (
	"context"
	"strings"
	"testing"

	"flashextract/internal/engine"
	"flashextract/internal/region"
)

// fundedCSV mirrors the structure of the paper's Fig. 3 ("Funded -
// February" from the EUSES corpus): department blocks of investigator
// rows with per-department subtotal rows.
const fundedCSV = `Funded Proposals February,,,
,,,
Department:,Biology,,
Lee,NSF,4000,approved
Kim,NIH,2500,approved
Subtotal,,6500,
Department:,Chemistry,,
Cho,DOE,1200,pending
Subtotal,,1200,
Department:,Physics,,
Park,NASA,900,approved
Ruiz,NSF,3100,approved
May,DOD,700,pending
Subtotal,,4700,
`

func fundedDoc() *Document { return MustFromCSV(fundedCSV) }

func extractSeq(t *testing.T, p engine.SeqRegionProgram, in region.Region) []region.Region {
	t.Helper()
	out, err := p.ExtractSeq(in)
	if err != nil {
		t.Fatalf("ExtractSeq(%s): %v", p, err)
	}
	return out
}

func regionValues(rs []region.Region) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Value()
	}
	return out
}

// ---- region mechanics ----

func TestRegionMechanics(t *testing.T) {
	d := fundedDoc()
	cell := d.CellAt(3, 2)
	if cell.Value() != "4000" {
		t.Fatalf("cell value = %q", cell.Value())
	}
	row := d.Row(3)
	if !row.Contains(cell) || cell.Contains(row) {
		t.Fatal("containment broken")
	}
	if !row.Overlaps(cell) || !cell.Overlaps(row) {
		t.Fatal("overlap broken")
	}
	other := d.CellAt(4, 2)
	if cell.Overlaps(other) {
		t.Fatal("distinct cells overlap")
	}
	if !cell.Less(other) || other.Less(cell) {
		t.Fatal("cell order broken")
	}
	if !row.Less(cell) {
		t.Fatal("outer rect should order before its first cell")
	}
	if !d.WholeRegion().Contains(row) {
		t.Fatal("whole region must contain rows")
	}
	if got := d.Row(5).Value(); !strings.Contains(got, "Subtotal") || !strings.Contains(got, "6500") {
		t.Fatalf("rect value = %q", got)
	}
}

func TestRegionPanics(t *testing.T) {
	d := fundedDoc()
	for _, f := range []func(){
		func() { d.CellAt(99, 0) },
		func() { d.Rect(2, 2, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// ---- cell tokens ----

func TestCellTokens(t *testing.T) {
	cases := []struct {
		tok  CellTok
		s    string
		want bool
	}{
		{NumericCell, "4000", true},
		{NumericCell, "-12.50", true},
		{NumericCell, "1,200", true},
		{NumericCell, "", false},
		{NumericCell, "abc", false},
		{AlphaCell, "Lee", true},
		{AlphaCell, "O'Brien-Smith Jr.", true},
		{AlphaCell, "R01", false},
		{AlphaCell, "", false},
		{EmptyCell, "", true},
		{EmptyCell, "  ", true},
		{EmptyCell, "x", false},
		{NonEmptyCell, "x", true},
		{NonEmptyCell, "", false},
		{AnyCell, "", true},
		{AnyCell, "anything", true},
		{LiteralCell("Subtotal"), "Subtotal", true},
		{LiteralCell("Subtotal"), "Total", false},
	}
	for _, c := range cases {
		if got := c.tok.Matches(c.s); got != c.want {
			t.Errorf("%s.Matches(%q) = %v, want %v", c.tok, c.s, got, c.want)
		}
	}
}

func TestMostSpecificCommon(t *testing.T) {
	d := MustFromCSV("x,x\na,9\n")
	if tok := mostSpecificCommon(d, []string{"x", "x"}); !tok.isLit {
		t.Fatalf("recurring equal contents should literalize, got %s", tok)
	}
	if tok := mostSpecificCommon(d, []string{"a", "a"}); tok.isLit {
		t.Fatalf("non-recurring content must not literalize, got %s", tok)
	}
	if tok := mostSpecificCommon(d, []string{"1", "2.5"}); tok.Name != "Numeric" {
		t.Fatalf("numeric contents = %s", tok)
	}
	if tok := mostSpecificCommon(d, []string{"", ""}); tok.Name != "Empty" {
		t.Fatalf("empty contents = %s", tok)
	}
	if tok := mostSpecificCommon(d, []string{"a", "9"}); tok.Name != "NonEmpty" {
		t.Fatalf("mixed contents = %s", tok)
	}
	if tok := mostSpecificCommon(d, []string{"a", ""}); tok.Name != "Any" {
		t.Fatalf("mixed with empty = %s", tok)
	}
}

// ---- amount extraction (task (a) of Ex. 3) ----

func TestLearnAmountsExcludingSubtotals(t *testing.T) {
	d := fundedDoc()
	lang := d.Language()
	// First attempt: two positives. The cheapest consistent predicate is
	// plain Numeric, which wrongly includes the subtotal amounts.
	ex := engine.SeqRegionExample{
		Input:    d.WholeRegion(),
		Positive: []region.Region{d.CellAt(3, 2), d.CellAt(4, 2)},
	}
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{ex})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	// The user strikes the first subtotal amount as a negative example.
	ex.Negative = []region.Region{d.CellAt(5, 2)}
	progs = lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{ex})
	if len(progs) == 0 {
		t.Fatal("no programs after negative")
	}
	got := regionValues(extractSeq(t, progs[0], d.WholeRegion()))
	want := []string{"4000", "2500", "1200", "900", "3100", "700"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("top program %s extracted %v, want %v", progs[0], got, want)
	}
}

// ---- department extraction ----

// learnByRefinement mirrors the paper's interaction loop (and the §6
// simulator): start from the first golden region, re-learn after adding
// the first mismatch as a positive or negative example, and report how
// many examples were needed.
func learnByRefinement(t *testing.T, d *Document, golden []region.Region, maxExamples int) (engine.SeqRegionProgram, int) {
	t.Helper()
	lang := d.Language()
	ex := engine.SeqRegionExample{Input: d.WholeRegion(), Positive: golden[:1]}
	for {
		progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{ex})
		if len(progs) == 0 {
			t.Fatalf("synthesis failed with %d examples", len(ex.Positive)+len(ex.Negative))
		}
		got := extractSeq(t, progs[0], d.WholeRegion())
		pos, neg, done := firstMismatch(golden, got)
		if done {
			return progs[0], len(ex.Positive) + len(ex.Negative)
		}
		if pos != nil {
			ex.Positive = append(ex.Positive, pos)
			region.Sort(ex.Positive)
		} else {
			ex.Negative = append(ex.Negative, neg)
		}
		if len(ex.Positive)+len(ex.Negative) > maxExamples {
			t.Fatalf("no convergence within %d examples; last program: %s → %v",
				maxExamples, progs[0], regionValues(got))
		}
	}
}

// firstMismatch compares extraction output against the golden set in
// document order and returns the first missing golden region (as a new
// positive) or the first spurious region (as a new negative).
func firstMismatch(golden, got []region.Region) (pos, neg region.Region, done bool) {
	inGolden := map[region.Region]bool{}
	for _, g := range golden {
		inGolden[g] = true
	}
	inGot := map[region.Region]bool{}
	for _, g := range got {
		inGot[g] = true
	}
	var all []region.Region
	all = append(all, golden...)
	all = append(all, got...)
	region.Sort(all)
	for _, r := range all {
		if inGolden[r] && !inGot[r] {
			return r, nil, false
		}
		if !inGolden[r] && inGot[r] {
			return nil, r, false
		}
	}
	return nil, nil, true
}

func TestLearnDepartmentsByRefinement(t *testing.T) {
	d := fundedDoc()
	golden := []region.Region{d.CellAt(2, 1), d.CellAt(6, 1), d.CellAt(9, 1)}
	prog, examples := learnByRefinement(t, d, golden, 6)
	got := regionValues(extractSeq(t, prog, d.WholeRegion()))
	want := []string{"Biology", "Chemistry", "Physics"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("converged program %s extracted %v, want %v", prog, got, want)
	}
	t.Logf("departments converged with %d examples: %s", examples, prog)
}

// ---- record (row range) extraction ----

func TestLearnRecordRows(t *testing.T) {
	d := fundedDoc()
	lang := d.Language()
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{d.Rect(3, 0, 3, 3), d.Rect(4, 0, 4, 3)},
		Negative: []region.Region{d.Rect(5, 0, 5, 3)},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	got := extractSeq(t, progs[0], d.WholeRegion())
	if len(got) != 6 {
		t.Fatalf("top program %s extracted %d records, want 6: %v", progs[0], len(got), got)
	}
	for _, r := range got {
		rect := r.(RectRegion)
		if rect.R1 != rect.R2 || rect.C1 != 0 || rect.C2 != 3 {
			t.Fatalf("record %v is not a full row", rect)
		}
		name := d.Grid.Cell(rect.R1, 0)
		if name == "Subtotal" || name == "Department:" {
			t.Fatalf("non-record row extracted: %v", rect)
		}
	}
}

// ---- region programs within a record ----

func TestLearnCellWithinRecord(t *testing.T) {
	d := fundedDoc()
	lang := d.Language()
	// Investigator name within a record row: AbsCell(0).
	progs := lang.SynthesizeRegion(context.Background(), []engine.RegionExample{
		{Input: d.Rect(3, 0, 3, 3), Output: d.CellAt(3, 0)},
		{Input: d.Rect(4, 0, 4, 3), Output: d.CellAt(4, 0)},
	})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	r, err := progs[0].Extract(d.Rect(10, 0, 10, 3))
	if err != nil || r == nil {
		t.Fatalf("Extract: %v, %v", r, err)
	}
	if r.Value() != "Park" {
		t.Fatalf("program %s extracted %q, want Park", progs[0], r.Value())
	}
}

func TestLearnRectRegionProgram(t *testing.T) {
	d := fundedDoc()
	lang := d.Language()
	// A rectangle output: the whole first department block within the
	// sheet (rows 2..5).
	progs := lang.SynthesizeRegion(context.Background(), []engine.RegionExample{
		{Input: d.WholeRegion(), Output: d.Rect(2, 0, 5, 3)},
	})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	r, err := progs[0].Extract(d.WholeRegion())
	if err != nil || r == nil {
		t.Fatalf("Extract: %v, %v", r, err)
	}
	if got := r.(RectRegion); got.R1 != 2 || got.R2 != 5 {
		t.Fatalf("extracted %v", got)
	}
}

func TestRegionProgramNullOnMissing(t *testing.T) {
	d := fundedDoc()
	lang := d.Language()
	// Learn "the numeric cell of the row" from a record row, then run it
	// on the blank row: expect null.
	progs := lang.SynthesizeRegion(context.Background(), []engine.RegionExample{
		{Input: d.Rect(3, 0, 3, 3), Output: d.CellAt(3, 2)},
		{Input: d.Rect(4, 0, 4, 3), Output: d.CellAt(4, 2)},
	})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	var nullCapable bool
	for _, p := range progs {
		r, err := p.Extract(d.Rect(1, 0, 1, 3))
		if err == nil && r == nil {
			nullCapable = true
			break
		}
		if err == nil && r != nil {
			// AbsCell-style programs still return a (blank) cell — that is
			// fine; the schema's type check rejects it at the engine level.
			nullCapable = true
			break
		}
	}
	if !nullCapable {
		t.Fatal("no program handled the empty row gracefully")
	}
}

// ---- transfer to a similar workbook ----

func TestProgramTransfersToSimilarSheet(t *testing.T) {
	d := fundedDoc()
	golden := []region.Region{d.CellAt(2, 1), d.CellAt(6, 1), d.CellAt(9, 1)}
	prog, _ := learnByRefinement(t, d, golden, 6)
	progs := []engine.SeqRegionProgram{prog}
	other := MustFromCSV(`Funded Proposals March,,,
,,,
Department:,Geology,,
Woo,NSF,800,approved
Subtotal,,800,
Department:,Botany,,
Diaz,NIH,950,approved
Subtotal,,950,
`)
	got := regionValues(extractSeq(t, progs[0], other.WholeRegion()))
	if strings.Join(got, ",") != "Geology,Botany" {
		t.Fatalf("transfer extracted %v", got)
	}
}

// ---- soundness ----

func TestAllReturnedProgramsConsistent(t *testing.T) {
	d := fundedDoc()
	lang := d.Language()
	pos := []region.Region{d.CellAt(3, 2), d.CellAt(4, 2)}
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: pos,
	}})
	for _, p := range progs {
		got := extractSeq(t, p, d.WholeRegion())
		i := 0
		for _, r := range got {
			if i < len(pos) && r == pos[i] {
				i++
			}
		}
		if i != len(pos) {
			t.Fatalf("program %s misses positives: %v", p, regionValues(got))
		}
	}
}

// ---- degenerate inputs ----

func TestSynthesizeEmpty(t *testing.T) {
	var l lang
	if got := l.SynthesizeSeqRegion(context.Background(), nil); got != nil {
		t.Fatal("expected nil")
	}
	if got := l.SynthesizeRegion(context.Background(), nil); got != nil {
		t.Fatal("expected nil")
	}
}

func TestSynthesizeRegionRejectsMixedOutputs(t *testing.T) {
	d := fundedDoc()
	var l lang
	got := l.SynthesizeRegion(context.Background(), []engine.RegionExample{
		{Input: d.WholeRegion(), Output: d.CellAt(3, 0)},
		{Input: d.WholeRegion(), Output: d.Rect(3, 0, 3, 3)},
	})
	if got != nil {
		t.Fatal("mixed cell/rect outputs must fail")
	}
}

func TestSynthesizeRegionRejectsOutsideOutput(t *testing.T) {
	d := fundedDoc()
	var l lang
	if got := l.SynthesizeRegion(context.Background(), []engine.RegionExample{
		{Input: d.Rect(3, 0, 3, 3), Output: d.CellAt(4, 0)},
	}); got != nil {
		t.Fatal("output outside input must fail")
	}
}

func TestPredicateStrings(t *testing.T) {
	p := truePred()
	if p.String() != "λx: True" {
		t.Fatalf("True pred String = %q", p.String())
	}
	p.toks[4] = NumericCell
	if !strings.Contains(p.String(), "Surround") || !strings.Contains(p.String(), "Numeric") {
		t.Fatalf("Surround String = %q", p.String())
	}
	rp := rowPred{}
	if rp.String() != "λx: True" {
		t.Fatalf("row True String = %q", rp.String())
	}
	rp = rowPred{toks: []CellTok{LiteralCell("Subtotal")}}
	if !strings.Contains(rp.String(), "Sequence") {
		t.Fatalf("Sequence String = %q", rp.String())
	}
}
