package sheetlang

import (
	"context"
	"strings"
	"testing"

	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/region"
)

func TestSeqProgramSerializationRoundTrip(t *testing.T) {
	d := fundedDoc()
	l := d.Language().(*lang)
	progs := l.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{d.CellAt(3, 2), d.CellAt(4, 2)},
		Negative: []region.Region{d.CellAt(5, 2)},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	data, err := l.MarshalSeqProgram(progs[0])
	if err != nil {
		t.Fatal(err)
	}
	back, err := l.UnmarshalSeqProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	orig := regionValues(extractSeq(t, progs[0], d.WholeRegion()))
	again := regionValues(extractSeq(t, back, d.WholeRegion()))
	if strings.Join(orig, "|") != strings.Join(again, "|") {
		t.Fatalf("round trip changed behaviour: %v vs %v", orig, again)
	}
}

func TestRecordProgramSerializationRoundTrip(t *testing.T) {
	d := fundedDoc()
	l := d.Language().(*lang)
	progs := l.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{d.Rect(3, 0, 3, 3), d.Rect(4, 0, 4, 3)},
		Negative: []region.Region{d.Rect(5, 0, 5, 3)},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	data, err := l.MarshalSeqProgram(progs[0])
	if err != nil {
		t.Fatal(err)
	}
	back, err := l.UnmarshalSeqProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(extractSeq(t, back, d.WholeRegion())), len(extractSeq(t, progs[0], d.WholeRegion())); got != want {
		t.Fatalf("round trip changed record count: %d vs %d", got, want)
	}
}

func TestRegionProgramSerializationRoundTrip(t *testing.T) {
	d := fundedDoc()
	l := d.Language().(*lang)
	for name, ex := range map[string]engine.RegionExample{
		"cell": {Input: d.Rect(3, 0, 3, 3), Output: d.CellAt(3, 2)},
		"rect": {Input: d.WholeRegion(), Output: d.Rect(2, 0, 5, 3)},
	} {
		progs := l.SynthesizeRegion(context.Background(), []engine.RegionExample{ex})
		if len(progs) == 0 {
			t.Fatalf("%s: no programs", name)
		}
		data, err := l.MarshalRegionProgram(progs[0])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := l.UnmarshalRegionProgram(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r1, _ := progs[0].Extract(ex.Input)
		r2, _ := back.Extract(ex.Input)
		if r1 == nil || r2 == nil || r1.Value() != r2.Value() {
			t.Fatalf("%s: behaviour changed: %v vs %v", name, r1, r2)
		}
	}
}

func TestCellTokSpecRoundTrip(t *testing.T) {
	toks := []CellTok{AnyCell, EmptyCell, NonEmptyCell, NumericCell, AlphaCell, LiteralCell("Subtotal")}
	s, err := marshalCellToks(toks)
	if err != nil {
		t.Fatal(err)
	}
	back, err := unmarshalCellToks(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(toks) {
		t.Fatalf("length changed: %d", len(back))
	}
	for i := range toks {
		if back[i].Name != toks[i].Name {
			t.Fatalf("token %d changed: %s vs %s", i, toks[i], back[i])
		}
		for _, content := range []string{"", "42", "Subtotal", "abc"} {
			if back[i].Matches(content) != toks[i].Matches(content) {
				t.Fatalf("token %s behaviour changed on %q", toks[i], content)
			}
		}
	}
}

func TestDecodeLeafErrorsSheet(t *testing.T) {
	for _, spec := range []core.ProgramSpec{
		{Op: "sheet.unknown"},
		{Op: "sheet.cellPred", Attrs: map[string]string{"toks": "junk"}},
		{Op: "sheet.cellPred", Attrs: map[string]string{"toks": `[{"kind":"std","value":"Any"}]`}}, // wrong count
		{Op: "sheet.cell", Attrs: map[string]string{"c": "junk"}},
		{Op: "sheet.cell", Attrs: map[string]string{"c": `{"kind":"weird"}`}},
		{Op: "sheet.cellPair", Attrs: map[string]string{"c1": "junk", "c2": "junk"}},
		{Op: "sheet.rowPred", Attrs: map[string]string{"toks": `[{"kind":"huh"}]`}},
	} {
		if _, err := decodeLeaf(spec); err == nil {
			t.Errorf("decodeLeaf(%s) succeeded, want error", spec.Op)
		}
	}
}
