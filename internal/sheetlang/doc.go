// Package sheetlang implements Lsps, the FlashExtract data-extraction DSL
// for spreadsheets (Fig. 9 of the paper), together with its learners. A
// leaf region is a single cell; a non-leaf region is a rectangular cell
// range. Cell sequences are selected by cell predicates (the content of a
// cell and its eight neighbours matched against nine tokens) or by row
// predicates (consecutive cell contents matched against a token sequence),
// optionally refined by index filters; ranges are built by pairing start
// and end cells.
package sheetlang

import (
	"fmt"
	"strings"
	"sync"

	"flashextract/internal/engine"
	"flashextract/internal/region"
	"flashextract/internal/sheet"
)

// Document is a spreadsheet.
type Document struct {
	Grid *sheet.Grid
	lang *lang

	countsOnce sync.Once
	counts     map[string]int // lazy cache of cell content frequencies
}

// contentCount returns how many cells of the sheet hold exactly s. The
// lazy count build is synchronized: concurrent rule learners
// (core.UnionLearners) share the document.
func (d *Document) contentCount(s string) int {
	d.countsOnce.Do(func() {
		d.counts = map[string]int{}
		for r := 0; r < d.Grid.Rows; r++ {
			for c := 0; c < d.Grid.Cols; c++ {
				d.counts[d.Grid.Cell(r, c)]++
			}
		}
	})
	return d.counts[s]
}

// NewDocument wraps a grid.
func NewDocument(g *sheet.Grid) *Document {
	d := &Document{Grid: g}
	d.lang = &lang{}
	return d
}

// FromCSV loads a spreadsheet from CSV text.
func FromCSV(src string) (*Document, error) {
	g, err := sheet.FromCSV(src)
	if err != nil {
		return nil, err
	}
	return NewDocument(g), nil
}

// MustFromCSV is FromCSV for statically known workbooks.
func MustFromCSV(src string) *Document {
	d, err := FromCSV(src)
	if err != nil {
		panic(err)
	}
	return d
}

// WholeRegion returns the rectangle covering the entire sheet.
func (d *Document) WholeRegion() region.Region {
	return RectRegion{Doc: d, R1: 0, C1: 0, R2: d.Grid.Rows - 1, C2: d.Grid.Cols - 1}
}

// Language returns the Lsps DSL.
func (d *Document) Language() engine.Language { return d.lang }

// CellAt returns the cell region at (r, c).
func (d *Document) CellAt(r, c int) CellRegion {
	if !d.Grid.InRange(r, c) {
		panic(fmt.Sprintf("sheetlang: cell (%d,%d) out of range", r, c))
	}
	return CellRegion{Doc: d, R: r, C: c}
}

// Rect returns the rectangular region with the given inclusive corners.
func (d *Document) Rect(r1, c1, r2, c2 int) RectRegion {
	if r1 > r2 || c1 > c2 || !d.Grid.InRange(r1, c1) || !d.Grid.InRange(r2, c2) {
		panic(fmt.Sprintf("sheetlang: invalid rect (%d,%d)-(%d,%d)", r1, c1, r2, c2))
	}
	return RectRegion{Doc: d, R1: r1, C1: c1, R2: r2, C2: c2}
}

// Row returns the full-width rectangle of one row.
func (d *Document) Row(r int) RectRegion {
	return d.Rect(r, 0, r, d.Grid.Cols-1)
}

// bounds returns the rectangular bounds of any sheetlang region.
func bounds(r region.Region) (doc *Document, r1, c1, r2, c2 int, ok bool) {
	switch v := r.(type) {
	case CellRegion:
		return v.Doc, v.R, v.C, v.R, v.C, true
	case RectRegion:
		return v.Doc, v.R1, v.C1, v.R2, v.C2, true
	default:
		return nil, 0, 0, 0, 0, false
	}
}

// CellRegion is a single-cell (leaf) region.
type CellRegion struct {
	Doc  *Document
	R, C int
}

var _ region.Region = CellRegion{}

// Contains reports nesting: a cell contains only itself (or an equal
// one-cell rectangle).
func (r CellRegion) Contains(other region.Region) bool {
	doc, r1, c1, r2, c2, ok := bounds(other)
	return ok && doc == r.Doc && r1 == r.R && r2 == r.R && c1 == r.C && c2 == r.C
}

// Overlaps reports bound intersection.
func (r CellRegion) Overlaps(other region.Region) bool {
	doc, r1, c1, r2, c2, ok := bounds(other)
	return ok && doc == r.Doc && r1 <= r.R && r.R <= r2 && c1 <= r.C && r.C <= c2
}

// Less orders cells in row-major order; at the same position a rectangle
// (outer) precedes the cell, so a cell is never less than a region
// starting at its own coordinates.
func (r CellRegion) Less(other region.Region) bool {
	_, r1, c1, _, _, ok := bounds(other)
	if !ok {
		return false
	}
	return r.R < r1 || (r.R == r1 && r.C < c1)
}

// Value returns the cell content.
func (r CellRegion) Value() string { return r.Doc.Grid.Cell(r.R, r.C) }

// SourceSpan reports the cell as a one-cell grid rectangle.
func (r CellRegion) SourceSpan() region.SourceSpan {
	return region.SourceSpan{Space: "grid", R1: r.R, C1: r.C, R2: r.R, C2: r.C}
}

func (r CellRegion) String() string { return fmt.Sprintf("cell(%d,%d)", r.R, r.C) }

// RectRegion is a rectangular (non-leaf) region with inclusive corners.
type RectRegion struct {
	Doc            *Document
	R1, C1, R2, C2 int
}

var _ region.Region = RectRegion{}

// Contains reports bound nesting.
func (r RectRegion) Contains(other region.Region) bool {
	doc, r1, c1, r2, c2, ok := bounds(other)
	return ok && doc == r.Doc && r.R1 <= r1 && r.C1 <= c1 && r2 <= r.R2 && c2 <= r.C2
}

// Overlaps reports bound intersection.
func (r RectRegion) Overlaps(other region.Region) bool {
	doc, r1, c1, r2, c2, ok := bounds(other)
	return ok && doc == r.Doc && r.R1 <= r2 && r1 <= r.R2 && r.C1 <= c2 && c1 <= r.C2
}

// Less orders rectangles by top-left corner; larger rectangles first.
func (r RectRegion) Less(other region.Region) bool {
	_, r1, c1, r2, c2, ok := bounds(other)
	if !ok {
		return false
	}
	if r.R1 != r1 {
		return r.R1 < r1
	}
	if r.C1 != c1 {
		return r.C1 < c1
	}
	// same top-left: bigger area first
	return (r.R2-r.R1+1)*(r.C2-r.C1+1) > (r2-r1+1)*(c2-c1+1)
}

// Value returns the rectangle's contents: cells joined by tabs, rows by
// newlines.
func (r RectRegion) Value() string {
	var b strings.Builder
	for row := r.R1; row <= r.R2; row++ {
		if row > r.R1 {
			b.WriteByte('\n')
		}
		for col := r.C1; col <= r.C2; col++ {
			if col > r.C1 {
				b.WriteByte('\t')
			}
			b.WriteString(r.Doc.Grid.Cell(row, col))
		}
	}
	return b.String()
}

// SourceSpan reports the rectangle's inclusive grid corners.
func (r RectRegion) SourceSpan() region.SourceSpan {
	return region.SourceSpan{Space: "grid", R1: r.R1, C1: r.C1, R2: r.R2, C2: r.C2}
}

func (r RectRegion) String() string {
	return fmt.Sprintf("rect(%d,%d)-(%d,%d)", r.R1, r.C1, r.R2, r.C2)
}

// cellsIn returns the cells of the region in row-major order
// (splitcells).
func cellsIn(d *Document, r1, c1, r2, c2 int) []CellRegion {
	var out []CellRegion
	for r := r1; r <= r2; r++ {
		for c := c1; c <= c2; c++ {
			out = append(out, CellRegion{Doc: d, R: r, C: c})
		}
	}
	return out
}

// rowsIn returns the row rectangles of the region (splitrows), clipped to
// the region's column range.
func rowsIn(d *Document, r1, c1, r2, c2 int) []RectRegion {
	var out []RectRegion
	for r := r1; r <= r2; r++ {
		out = append(out, RectRegion{Doc: d, R1: r, C1: c1, R2: r, C2: c2})
	}
	return out
}

// Span returns the bounding rectangle of a and b, enabling bottom-up
// structure inference (see engine.Spanner).
func (d *Document) Span(a, b region.Region) (region.Region, error) {
	da, r1a, c1a, r2a, c2a, ok1 := bounds(a)
	db, r1b, c1b, r2b, c2b, ok2 := bounds(b)
	if !ok1 || !ok2 || da != d || db != d {
		return nil, fmt.Errorf("sheetlang: Span requires two regions of this document")
	}
	return RectRegion{
		Doc: d,
		R1:  min(r1a, r1b), C1: min(c1a, c1b),
		R2: max(r2a, r2b), C2: max(c2a, c2b),
	}, nil
}
