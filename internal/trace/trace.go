// Package trace is the stdlib-only hierarchical span tracer of the
// synthesis stack. A Tracer owns a forest of spans; each span records a
// name, its parent, a start time and duration, and a small ordered set of
// attributes (learner name, candidate counts, cache hit/miss deltas,
// budget remaining, …). Spans are carried through context.Context exactly
// like the metrics sink: instrumented code calls Start unconditionally,
// and when no tracer is installed the call is a single context lookup that
// returns a nil span whose methods are all no-ops — the disabled path adds
// no measurable cost to the synthesis hot loops.
//
// Finished trees are rendered by the exporters in export.go: Chrome
// trace-event JSON (loadable in Perfetto via ui.perfetto.dev), a
// human-readable indented tree, and a nested JSON form served by the batch
// admin endpoint (/trace/last).
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSpans bounds the number of spans one Tracer will allocate.
// Once the cap is reached, Start returns nil spans (recorded in Dropped),
// so a pathological synthesis run cannot grow a trace without bound.
const DefaultMaxSpans = 262144

// Tracer owns the spans of one trace: it allocates IDs, holds the root
// spans, and enforces the span cap. All methods are safe for concurrent
// use.
type Tracer struct {
	epoch    time.Time
	maxSpans int64

	nextID  atomic.Uint64
	spans   atomic.Int64
	dropped atomic.Int64

	mu    sync.Mutex
	roots []*Span
}

// NewTracer creates an empty tracer with the default span cap.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), maxSpans: DefaultMaxSpans}
}

// SetMaxSpans overrides the tracer's span cap (values < 1 keep the
// default). It must be called before spans are started.
func (t *Tracer) SetMaxSpans(n int) {
	if n >= 1 {
		t.maxSpans = int64(n)
	}
}

// Roots returns the root spans started on this tracer, in start order.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Dropped reports how many spans were discarded by the span cap.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// SpanCount reports how many spans the tracer has allocated.
func (t *Tracer) SpanCount() int64 { return t.spans.Load() }

// newSpan allocates one span (or nil when the cap is reached).
func (t *Tracer) newSpan(name string, parent *Span) *Span {
	if t.spans.Add(1) > t.maxSpans {
		t.spans.Add(-1)
		t.dropped.Add(1)
		return nil
	}
	s := &Span{
		tracer: t,
		id:     t.nextID.Add(1),
		name:   name,
		start:  time.Now(),
	}
	if parent != nil {
		s.parentID = parent.id
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else {
		t.mu.Lock()
		t.roots = append(t.roots, s)
		t.mu.Unlock()
	}
	return s
}

// Attr is one span attribute. Values are restricted to string, int64,
// float64, and bool so every exporter renders them losslessly.
type Attr struct {
	Key   string
	Value any
}

// Span is one node of a trace tree. A nil *Span is valid and inert: every
// method is a no-op, which is how the disabled-tracer fast path works.
// Child spans may be created and attributes set from multiple goroutines
// concurrently.
type Span struct {
	tracer   *Tracer
	id       uint64
	parentID uint64
	name     string
	start    time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// ID returns the span's tracer-unique ID (0 for nil spans).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// ParentID returns the ID of the span's parent (0 for roots and nil spans).
func (s *Span) ParentID() uint64 {
	if s == nil {
		return 0
	}
	return s.parentID
}

// Name returns the span's name ("" for nil spans).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time (zero for nil spans).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's recorded duration: zero before End, the
// start-to-End wall time after.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Children returns a copy of the span's child list, in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns a copy of the span's attributes, in set order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// End records the span's duration. Only the first End takes effect.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// setAttr appends one attribute (repeated keys are kept in set order; the
// exporters render the last value per key).
func (s *Span) setAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.mu.Unlock()
}

// SetString sets a string attribute.
func (s *Span) SetString(key, v string) { s.setAttr(key, v) }

// SetInt sets an integer attribute.
func (s *Span) SetInt(key string, v int64) { s.setAttr(key, v) }

// SetFloat sets a float attribute.
func (s *Span) SetFloat(key string, v float64) { s.setAttr(key, v) }

// SetBool sets a boolean attribute.
func (s *Span) SetBool(key string, v bool) { s.setAttr(key, v) }

// spanKey keys the current *Span installed in a context.
type spanKey struct{}

// StartRoot starts a root span of the tracer and returns a context
// carrying it; subsequent Start calls with the returned context nest under
// it. A nil tracer yields the unchanged context and a nil span.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := t.newSpan(name, nil)
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// Start begins a child span of the span carried by the context. When no
// tracer/span is installed (or the tracer's span cap is reached) it
// returns the unchanged context and a nil span — this is the no-op fast
// path: one context value lookup and a nil comparison.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tracer.newSpan(name, parent)
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// FromContext returns the span carried by the context, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
