package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one Chrome trace-event ("X" = complete event). The field
// set and order match what Perfetto's JSON importer expects; Ts and Dur
// are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object form of the Chrome trace format, the shape
// Perfetto loads directly.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders the given span trees as Chrome trace-event JSON
// (complete "X" events inside a {"traceEvents": [...]} object), loadable
// in Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// Complete events on one thread lane must nest by time, but sibling spans
// created by concurrent goroutines overlap; the exporter therefore assigns
// lanes (tids) greedily: a child shares its parent's lane when it starts
// after every sibling already placed there ended, and otherwise gets a
// fresh lane of its own. Lanes are never reused across subtrees, so the
// nesting invariant holds by construction.
func ChromeTrace(roots ...*Span) ([]byte, error) {
	var events []chromeEvent
	lane := int64(0)
	var epoch time.Time
	for _, r := range roots {
		if r != nil {
			epoch = r.start
			break
		}
	}
	var walk func(s *Span, tid int64)
	walk = func(s *Span, tid int64) {
		ts := s.start.Sub(epoch)
		events = append(events, chromeEvent{
			Name: s.Name(),
			Cat:  "flashextract",
			Ph:   "X",
			Ts:   float64(ts.Nanoseconds()) / 1e3,
			Dur:  float64(s.Duration().Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  tid,
			Args: attrMap(s.Attrs()),
		})
		laneEnd := time.Time{} // end of the last sibling placed on tid
		for _, c := range s.Children() {
			childLane := tid
			if c.start.Before(laneEnd) {
				lane++
				childLane = lane
			} else {
				laneEnd = c.start.Add(c.Duration())
			}
			walk(c, childLane)
		}
	}
	for _, r := range roots {
		if r == nil {
			continue
		}
		lane++
		walk(r, lane)
	}
	return json.Marshal(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// attrMap flattens attributes to a JSON object; the last value per key
// wins, matching the setter order.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// WriteTree writes the span tree as a human-readable indented tree, one
// span per line with its duration and attributes:
//
//	field:ts 12.3ms pos=2 neg=0
//	  ancestor:⊥ 12.1ms
//	    learn 8.0ms
//	      merge 7.9ms examples=1 programs=3
func WriteTree(w io.Writer, root *Span) error {
	return writeTree(w, root, 0, false)
}

// WriteStructure writes the span tree with durations zeroed and attributes
// omitted — the deterministic, structure-only form used by golden tests.
func WriteStructure(w io.Writer, root *Span) error {
	return writeTree(w, root, 0, true)
}

func writeTree(w io.Writer, s *Span, depth int, structureOnly bool) error {
	if s == nil {
		return nil
	}
	indent := strings.Repeat("  ", depth)
	var err error
	if structureOnly {
		_, err = fmt.Fprintf(w, "%s%s\n", indent, s.Name())
	} else {
		var b strings.Builder
		b.WriteString(indent)
		b.WriteString(s.Name())
		fmt.Fprintf(&b, " %s", s.Duration().Round(time.Microsecond))
		for _, a := range dedupAttrs(s.Attrs()) {
			fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		}
		b.WriteByte('\n')
		_, err = io.WriteString(w, b.String())
	}
	if err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := writeTree(w, c, depth+1, structureOnly); err != nil {
			return err
		}
	}
	return nil
}

// dedupAttrs keeps the last value per key, preserving first-set order.
func dedupAttrs(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	idx := map[string]int{}
	var out []Attr
	for _, a := range attrs {
		if i, ok := idx[a.Key]; ok {
			out[i] = a
			continue
		}
		idx[a.Key] = len(out)
		out = append(out, a)
	}
	return out
}

// Node is the nested-JSON form of one span, served by the batch admin
// endpoint (/trace/last) and documented as flashextract-trace/v1 in
// EXPERIMENTS.md.
type Node struct {
	Name     string         `json:"name"`
	StartUs  float64        `json:"start_us"`
	DurUs    float64        `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*Node        `json:"children,omitempty"`
}

// ToNode converts a span tree to its nested-JSON form. Start offsets are
// microseconds relative to the root span.
func ToNode(root *Span) *Node {
	if root == nil {
		return nil
	}
	return toNode(root, root.start)
}

func toNode(s *Span, epoch time.Time) *Node {
	n := &Node{
		Name:    s.Name(),
		StartUs: float64(s.start.Sub(epoch).Nanoseconds()) / 1e3,
		DurUs:   float64(s.Duration().Nanoseconds()) / 1e3,
		Attrs:   attrMap(s.Attrs()),
	}
	for _, c := range s.Children() {
		n.Children = append(n.Children, toNode(c, epoch))
	}
	return n
}

// SpanNames returns the set of distinct span names in the tree, sorted —
// a convenience for tests asserting trace structure.
func SpanNames(root *Span) []string {
	seen := map[string]bool{}
	var walk func(s *Span)
	walk = func(s *Span) {
		if s == nil {
			return
		}
		seen[s.Name()] = true
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
