package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "orphan")
	if sp != nil {
		t.Fatalf("Start without tracer returned non-nil span")
	}
	if ctx2 != ctx {
		t.Fatalf("Start without tracer changed the context")
	}
	// Every nil-span method must be a no-op, not a panic.
	sp.End()
	sp.SetString("k", "v")
	sp.SetInt("n", 1)
	sp.SetFloat("f", 1.5)
	sp.SetBool("b", true)
	if sp.ID() != 0 || sp.Name() != "" || sp.Duration() != 0 {
		t.Fatalf("nil span accessors returned non-zero values")
	}
	if sp.Children() != nil || sp.Attrs() != nil {
		t.Fatalf("nil span lists non-nil")
	}
	var nilTracer *Tracer
	if _, sp := nilTracer.StartRoot(ctx, "r"); sp != nil {
		t.Fatalf("nil tracer StartRoot returned a span")
	}
}

func TestNesting(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartRoot(context.Background(), "root")
	ctx1, a := Start(ctx, "a")
	_, aa := Start(ctx1, "a.a")
	aa.End()
	a.End()
	_, b := Start(ctx, "b")
	b.SetInt("n", 7)
	b.End()
	root.End()

	if got := len(tr.Roots()); got != 1 {
		t.Fatalf("roots = %d, want 1", got)
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "a" || kids[1].Name() != "b" {
		t.Fatalf("root children = %v", names(kids))
	}
	if kids[0].ParentID() != root.ID() {
		t.Fatalf("child parent ID = %d, want %d", kids[0].ParentID(), root.ID())
	}
	g := kids[0].Children()
	if len(g) != 1 || g[0].Name() != "a.a" {
		t.Fatalf("grandchildren = %v", names(g))
	}
	attrs := kids[1].Attrs()
	if len(attrs) != 1 || attrs[0].Key != "n" || attrs[0].Value != int64(7) {
		t.Fatalf("attrs = %v", attrs)
	}
	if root.Duration() <= 0 {
		t.Fatalf("ended root has zero duration")
	}
}

// TestConcurrentChildren exercises concurrent span creation and attribute
// writes under one parent — the shape firstPassing's worker goroutines
// produce — and is expected to run under -race in CI.
func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartRoot(context.Background(), "root")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cctx, sp := Start(ctx, "child")
				sp.SetInt("worker", int64(w))
				_, in := Start(cctx, "inner")
				in.End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	kids := root.Children()
	if len(kids) != workers*perWorker {
		t.Fatalf("children = %d, want %d", len(kids), workers*perWorker)
	}
	for _, c := range kids {
		if c.ParentID() != root.ID() {
			t.Fatalf("child %d has parent %d, want %d", c.ID(), c.ParentID(), root.ID())
		}
		if len(c.Children()) != 1 {
			t.Fatalf("child missing inner span")
		}
	}
	if tr.SpanCount() != int64(1+2*workers*perWorker) {
		t.Fatalf("span count = %d", tr.SpanCount())
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTracer()
	tr.SetMaxSpans(3)
	ctx, root := tr.StartRoot(context.Background(), "root")
	_, a := Start(ctx, "a")
	_, b := Start(ctx, "b")
	_, c := Start(ctx, "c") // over the cap
	if a == nil || b == nil {
		t.Fatalf("spans under the cap were dropped")
	}
	if c != nil {
		t.Fatalf("span over the cap was allocated")
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	root.End()
}

// TestChromeRoundTrip asserts the Chrome export parses as JSON and
// re-marshals to the identical byte sequence, so downstream tooling can
// round-trip traces losslessly.
func TestChromeRoundTrip(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartRoot(context.Background(), "root")
	ctx1, a := Start(ctx, "a")
	a.SetString("field", "ts")
	a.SetInt("candidates", 12)
	a.SetFloat("seconds", 0.25)
	a.SetBool("hit", true)
	_, inner := Start(ctx1, "inner")
	inner.End()
	a.End()
	root.End()

	out, err := ChromeTrace(root)
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	if !json.Valid(out) {
		t.Fatalf("export is not valid JSON")
	}
	var file chromeFile
	if err := json.Unmarshal(out, &file); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(file.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(file.TraceEvents))
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 1 || ev.Tid < 1 || ev.Ts < 0 || ev.Dur < 0 || ev.Name == "" {
			t.Fatalf("malformed event: %+v", ev)
		}
	}
	again, err := json.Marshal(file)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(again) != string(out) {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", out, again)
	}
}

// TestChromeLanes asserts that overlapping sibling spans land on distinct
// lanes so Perfetto's nesting invariant (complete events on one tid nest
// by time) holds.
func TestChromeLanes(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartRoot(context.Background(), "root")
	// Two children created back-to-back and ended after both started: they
	// overlap in time, so they must not share a lane while both are open.
	_, a := Start(ctx, "a")
	_, b := Start(ctx, "b")
	a.End()
	b.End()
	root.End()
	out, err := ChromeTrace(root)
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	var file chromeFile
	if err := json.Unmarshal(out, &file); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	byName := map[string]chromeEvent{}
	for _, ev := range file.TraceEvents {
		byName[ev.Name] = ev
	}
	ea, eb := byName["a"], byName["b"]
	overlaps := ea.Ts < eb.Ts+eb.Dur && eb.Ts < ea.Ts+ea.Dur
	if overlaps && ea.Tid == eb.Tid {
		t.Fatalf("overlapping siblings share lane %d", ea.Tid)
	}
}

func TestTreeExports(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartRoot(context.Background(), "root")
	ctx1, a := Start(ctx, "a")
	a.SetInt("n", 1)
	a.SetInt("n", 2) // repeated key: last value wins in the rendering
	_, in := Start(ctx1, "inner")
	in.End()
	a.End()
	root.End()

	var tree strings.Builder
	if err := WriteTree(&tree, root); err != nil {
		t.Fatalf("WriteTree: %v", err)
	}
	if !strings.Contains(tree.String(), "a ") || !strings.Contains(tree.String(), "n=2") {
		t.Fatalf("tree rendering missing span or attr:\n%s", tree.String())
	}
	if strings.Contains(tree.String(), "n=1") {
		t.Fatalf("tree rendering kept stale attr value:\n%s", tree.String())
	}

	var structure strings.Builder
	if err := WriteStructure(&structure, root); err != nil {
		t.Fatalf("WriteStructure: %v", err)
	}
	want := "root\n  a\n    inner\n"
	if structure.String() != want {
		t.Fatalf("structure = %q, want %q", structure.String(), want)
	}

	n := ToNode(root)
	if n == nil || n.Name != "root" || len(n.Children) != 1 || n.Children[0].Children[0].Name != "inner" {
		t.Fatalf("ToNode shape wrong: %+v", n)
	}
	if ToNode(nil) != nil {
		t.Fatalf("ToNode(nil) != nil")
	}
	got := SpanNames(root)
	if want := []string{"a", "inner", "root"}; len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("SpanNames = %v", got)
	}
}

func names(spans []*Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name()
	}
	return out
}

// BenchmarkStartDisabled measures the no-op fast path: Start on a context
// with no tracer installed. This is the per-call-site cost the synthesis
// stack pays when tracing is off — a context lookup and a nil check.
func BenchmarkStartDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "noop")
		sp.SetInt("n", int64(i))
		sp.End()
	}
}

// BenchmarkStartEnabled measures the enabled path for comparison.
func BenchmarkStartEnabled(b *testing.B) {
	tr := NewTracer()
	tr.SetMaxSpans(1 << 30)
	ctx, root := tr.StartRoot(context.Background(), "root")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "span")
		sp.SetInt("n", int64(i))
		sp.End()
	}
	b.StopTimer()
	root.End()
}
