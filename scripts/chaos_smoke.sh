#!/usr/bin/env bash
# chaos_smoke.sh — end-to-end chaos differential for the batch serving
# stack: learns a tiny program, runs the corpus fault-free, then re-runs
# it with `flashextract batch -chaos seed=N` (transient/output-neutral
# sites only) for several seeds. Each chaos run must (a) emit NDJSON
# byte-identical to the fault-free run, (b) append a valid
# flashextract-chaos/v1 report to stderr, and (c) drain without goroutine
# leaks (checked by the binary's own -admin shutdown self-check). At least
# one seed must actually retry a read, or the differential is vacuous.
#
# Usage: scripts/chaos_smoke.sh   (from the repository root)
set -euo pipefail

workdir=$(mktemp -d)
admin_port=${ADMIN_PORT:-18081}
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building flashextract (race detector on) =="
go build -race -o "$workdir/flashextract" ./cmd/flashextract

echo "== learning a program from examples =="
cat > "$workdir/doc.txt" <<'EOF'
inventory
Chair: Aeron (price: $540.00)
Chair: Tulip (price: $99.99)
EOF
cat > "$workdir/schema.fx" <<'EOF'
Struct(Names: Seq([name] String), Prices: Seq([price] Float))
EOF
cat > "$workdir/examples.fx" <<'EOF'
+ name find:Aeron:0
+ name find:Tulip:0
+ price find:540.00:0
+ price find:99.99:0
EOF
"$workdir/flashextract" -type text -in "$workdir/doc.txt" \
    -schema "$workdir/schema.fx" -examples "$workdir/examples.fx" \
    -save "$workdir/prog.json" > /dev/null

echo "== generating a batch corpus =="
mkdir "$workdir/corpus"
i=0
for name in Bistro Windsor Wishbone Panton Bertoia Barcelona Wassily Eames \
            Tolix Cesca Acapulco Tulip; do
    i=$((i + 1))
    printf 'inventory\nChair: %s (price: $%d.50)\n' "$name" $((i * 10 + 30)) \
        > "$workdir/corpus/doc$(printf '%02d' $i).txt"
done

echo "== fault-free baseline run =="
"$workdir/flashextract" batch -load "$workdir/prog.json" -type text \
    -ordered -workers 3 -out "$workdir/baseline.ndjson" \
    "$workdir/corpus/"'*.txt' 2> "$workdir/baseline.log"

total_retries=0
for seed in 1 2 3; do
    echo "== chaos run: seed=$seed =="
    "$workdir/flashextract" batch -load "$workdir/prog.json" -type text \
        -ordered -workers 3 -chaos "seed=$seed" \
        -out "$workdir/chaos$seed.ndjson" \
        "$workdir/corpus/"'*.txt' 2> "$workdir/chaos$seed.log"

    if ! diff -u "$workdir/baseline.ndjson" "$workdir/chaos$seed.ndjson"; then
        echo "FAIL: seed=$seed output diverges from the fault-free run"
        cat "$workdir/chaos$seed.log"
        exit 1
    fi

    report=$(grep '"schema":"flashextract-chaos/v1"' "$workdir/chaos$seed.log" | tail -n 1)
    [ -n "$report" ] || { echo "FAIL: seed=$seed emitted no chaos report"; cat "$workdir/chaos$seed.log"; exit 1; }
    echo "$report"
    echo "$report" | grep -q "\"seed\":$seed," \
        || { echo "FAIL: report does not carry seed=$seed"; exit 1; }
    echo "$report" | grep -q '"errors":0,' \
        || { echo "FAIL: seed=$seed produced error records under transient-only chaos"; exit 1; }
    retries=$(echo "$report" | sed -n 's/.*"retries":\([0-9]*\).*/\1/p')
    total_retries=$((total_retries + retries))
done

if [ "$total_retries" -eq 0 ]; then
    echo "FAIL: no seed exercised the retry path; the differential proved nothing"
    exit 1
fi
echo "== $total_retries retried reads recovered across seeds =="

echo "== chaos + admin: drain, conservation, and goroutine-leak self-check =="
"$workdir/flashextract" batch -load "$workdir/prog.json" -type text \
    -admin "127.0.0.1:$admin_port" -ordered -chaos "seed=1" \
    -out "$workdir/chaos-admin.ndjson" \
    "$workdir/corpus/"'*.txt' 2> "$workdir/chaos-admin.log" &
pid=$!

base="http://127.0.0.1:$admin_port"
for _ in $(seq 1 100); do
    if curl -sf "$base/healthz" > /dev/null 2>&1; then
        curl -sf "$base/healthz" | grep -q '"status": "done"' && break
    fi
    kill -0 "$pid" 2>/dev/null || { echo "batch exited early"; cat "$workdir/chaos-admin.log"; exit 1; }
    sleep 0.1
done

# The admin.write site is not armed by a bare seed, but /healthz must
# still serve the conservation counters of the drained run.
health=$(curl -sf "$base/healthz")
echo "$health"
submitted=$(echo "$health" | sed -n 's/.*"submitted": *\([0-9]*\).*/\1/p')
processed=$(echo "$health" | sed -n 's/.*"processed": *\([0-9]*\).*/\1/p')
inflight=$(echo "$health" | sed -n 's/.*"in_flight": *\([0-9]*\).*/\1/p')
if [ "$submitted" != "$processed" ] || [ "$inflight" != "0" ]; then
    echo "FAIL: counter conservation violated: submitted=$submitted processed=$processed in_flight=$inflight"
    exit 1
fi

kill -INT "$pid"
if ! wait "$pid"; then
    echo "FAIL: chaos batch exited nonzero after SIGINT (goroutine leak or unclean drain)"
    cat "$workdir/chaos-admin.log"
    exit 1
fi
pid=""

if ! diff -u "$workdir/baseline.ndjson" "$workdir/chaos-admin.ndjson"; then
    echo "FAIL: admin-mode chaos output diverges from the fault-free run"
    exit 1
fi

echo "chaos smoke: OK"
