#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the long-lived extraction
# service: learns a tiny program, installs it into a program directory
# under the registry's <name>@<version>.<doctype>.json convention, starts
# `flashextract serve -admin`, and drives the flashextract-serve/v1
# protocol over stdin/stdout — ready frame, scan, scan_batch, a SIGHUP
# hot reload picking up a second program version, and error frames for
# unknown programs. The admin side is checked too (/programs, /rpc,
# /healthz, /metrics), then the stream is closed and the process must
# exit cleanly (it self-checks for goroutine leaks on the way out).
#
# Usage: scripts/serve_smoke.sh   (from the repository root)
set -euo pipefail

workdir=$(mktemp -d)
admin_port=${ADMIN_PORT:-18081}
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building flashextract =="
go build -o "$workdir/flashextract" ./cmd/flashextract

echo "== learning the program =="
cat > "$workdir/doc.txt" <<'EOF'
inventory
Chair: Aeron (price: $540.00)
Chair: Tulip (price: $99.99)
EOF
cat > "$workdir/schema.fx" <<'EOF'
Struct(Names: Seq([name] String), Prices: Seq([price] Float))
EOF
cat > "$workdir/examples.fx" <<'EOF'
+ name find:Aeron:0
+ name find:Tulip:0
+ price find:540.00:0
+ price find:99.99:0
EOF
mkdir "$workdir/programs"
"$workdir/flashextract" -type text -in "$workdir/doc.txt" \
    -schema "$workdir/schema.fx" -examples "$workdir/examples.fx" \
    -save "$workdir/programs/chairs@1.text.json" > /dev/null

echo "== starting flashextract serve -admin :$admin_port =="
mkfifo "$workdir/in"
"$workdir/flashextract" serve -programs "$workdir/programs" \
    -admin "127.0.0.1:$admin_port" -log-json \
    < "$workdir/in" > "$workdir/out.ndjson" 2> "$workdir/serve.log" &
pid=$!
# Hold the request pipe open for the whole session; closing it is EOF.
exec 3> "$workdir/in"

# wait_frames N — block until the server has written N response frames.
wait_frames() {
    for _ in $(seq 1 100); do
        [ -f "$workdir/out.ndjson" ] \
            && [ "$(wc -l < "$workdir/out.ndjson")" -ge "$1" ] && return 0
        kill -0 "$pid" 2>/dev/null \
            || { echo "serve exited early"; cat "$workdir/serve.log"; exit 1; }
        sleep 0.1
    done
    echo "FAIL: timed out waiting for $1 frames"; cat "$workdir/out.ndjson"; exit 1
}
# frame N — print the Nth response frame (1-based).
frame() { sed -n "$1p" "$workdir/out.ndjson"; }

echo "== ready frame =="
wait_frames 1
frame 1 | grep -q '"op":"ready"' || { echo "FAIL: no ready frame"; exit 1; }
frame 1 | grep -q '"protocol":"flashextract-serve/v1"' \
    || { echo "FAIL: ready frame missing protocol marker"; exit 1; }

echo "== scan =="
printf '{"id":"s1","op":"scan","program":"chairs","content":"inventory\\nChair: Bistro (price: $75.40)\\n"}\n' >&3
wait_frames 2
frame 2 | grep -q '"ok":true' || { echo "FAIL: scan not ok"; frame 2; exit 1; }
frame 2 | grep -q '"Prices":\[75.40\]' \
    || { echo "FAIL: scan record missing extraction"; frame 2; exit 1; }

echo "== scan_batch =="
printf '{"id":"b1","op":"scan_batch","program":"chairs@1","docs":[{"name":"a","content":"inventory\\nChair: X (price: $1.00)\\n"},{"name":"b","content":"inventory\\nChair: Y (price: $2.00)\\n"}]}\n' >&3
wait_frames 3
frame 3 | grep -q '"ok":true' || { echo "FAIL: scan_batch not ok"; frame 3; exit 1; }
frame 3 | grep -q '"docs":2' || { echo "FAIL: scan_batch summary"; frame 3; exit 1; }

echo "== structured error frame (unknown program) =="
printf '{"id":"e1","op":"scan","program":"tables","content":"x"}\n' >&3
wait_frames 4
frame 4 | grep -q '"code":"unknown_program"' \
    || { echo "FAIL: expected unknown_program error frame"; frame 4; exit 1; }
kill -0 "$pid" 2>/dev/null || { echo "FAIL: server exited on a bad request"; exit 1; }

echo "== SIGHUP hot reload =="
"$workdir/flashextract" -type text -in "$workdir/doc.txt" \
    -schema "$workdir/schema.fx" -examples "$workdir/examples.fx" \
    -save "$workdir/programs/chairs@2.text.json" > /dev/null
kill -HUP "$pid"
sleep 0.3
printf '{"id":"l1","op":"list_programs"}\n' >&3
wait_frames 5
frame 5 | grep -q '"program_count":2' \
    || { echo "FAIL: SIGHUP reload did not pick up chairs@2"; frame 5; exit 1; }
frame 5 | grep -q '"ref":"chairs@2"' \
    || { echo "FAIL: catalog missing chairs@2"; frame 5; exit 1; }

base="http://127.0.0.1:$admin_port"
echo "== admin /programs =="
programs=$(curl -sf "$base/programs")
echo "$programs" | grep -q '"schema": "flashextract-serve-programs/v1"' \
    || { echo "FAIL: /programs missing schema marker"; exit 1; }
echo "$programs" | grep -Eq '"scans": *[1-9]' \
    || { echo "FAIL: /programs has no per-program scan counters"; exit 1; }

echo "== admin /rpc =="
rpc=$(curl -sf -X POST --data '{"id":"r1","op":"scan","program":"chairs@1","content":"inventory\nChair: Q (price: $9.99)\n"}' "$base/rpc")
echo "$rpc" | grep -q '"ok":true' || { echo "FAIL: /rpc scan failed: $rpc"; exit 1; }

echo "== admin /healthz and /metrics =="
curl -sf "$base/healthz" | grep -Eq '"processed": *[0-9]+' \
    || { echo "FAIL: /healthz missing processed count"; exit 1; }
metrics=$(curl -sf "$base/metrics")
echo "$metrics" | grep -Eq '^serve_requests [1-9]' \
    || { echo "FAIL: serve_requests counter absent"; exit 1; }
echo "$metrics" | grep -q '^serve_reloads 1$' \
    || { echo "FAIL: expected serve_reloads 1"; exit 1; }

echo "== close frame + clean exit (goroutine-leak self-check) =="
printf '{"id":"z","op":"close"}\n' >&3
exec 3>&-
if ! wait "$pid"; then
    echo "FAIL: serve exited nonzero (goroutine leak or unclean drain)"
    cat "$workdir/serve.log"
    exit 1
fi
pid=""
tail -n 1 "$workdir/out.ndjson" | grep -q '"op":"close"' \
    || { echo "FAIL: close frame was not the last frame written"; exit 1; }

echo "serve smoke: OK"
