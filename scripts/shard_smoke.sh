#!/usr/bin/env bash
# shard_smoke.sh — end-to-end check of hash-range corpus sharding: learns
# a tiny program, runs a corpus unsharded, then runs the same corpus as
# three `-shard k/3` partitions (with the run-path prefilter on, so the
# two features are exercised together). The shards must (a) each own a
# non-empty, disjoint slice of the corpus, (b) drop exactly the documents
# they do not own, and (c) union — as a multiset of NDJSON lines — to
# exactly the unsharded output.
#
# Usage: scripts/shard_smoke.sh   (from the repository root)
set -euo pipefail

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

echo "== building flashextract (race detector on) =="
go build -race -o "$workdir/flashextract" ./cmd/flashextract

echo "== learning a program from examples =="
cat > "$workdir/doc.txt" <<'EOF'
inventory
Chair: Aeron (price: $540.00)
Chair: Tulip (price: $99.99)
EOF
cat > "$workdir/schema.fx" <<'EOF'
Struct(Names: Seq([name] String), Prices: Seq([price] Float))
EOF
cat > "$workdir/examples.fx" <<'EOF'
+ name find:Aeron:0
+ name find:Tulip:0
+ price find:540.00:0
+ price find:99.99:0
EOF
"$workdir/flashextract" -type text -in "$workdir/doc.txt" \
    -schema "$workdir/schema.fx" -examples "$workdir/examples.fx" \
    -save "$workdir/prog.json" > /dev/null

echo "== generating a batch corpus (matching docs + non-matching padding) =="
mkdir "$workdir/corpus"
i=0
for name in Bistro Windsor Wishbone Panton Bertoia Barcelona Wassily Eames \
            Tolix Cesca Acapulco Tulip; do
    i=$((i + 1))
    printf 'inventory\nChair: %s (price: $%d.50)\n' "$name" $((i * 10 + 30)) \
        > "$workdir/corpus/doc$(printf '%02d' $i).txt"
done
for pad in a b c; do
    printf 'lorem ipsum dolor amet\nconsectetur adipiscing elit %s\n' "$pad" \
        > "$workdir/corpus/pad-$pad.txt"
done
total=$(ls "$workdir/corpus" | wc -l)

echo "== unsharded reference run =="
"$workdir/flashextract" batch -load "$workdir/prog.json" -type text \
    -ordered -workers 2 -prefilter -out "$workdir/full.ndjson" \
    "$workdir/corpus/"'*.txt' 2> "$workdir/full.log"
[ "$(wc -l < "$workdir/full.ndjson")" -eq "$total" ] \
    || { echo "FAIL: unsharded run wrote $(wc -l < "$workdir/full.ndjson") of $total records"; exit 1; }

owned_sum=0
for k in 1 2 3; do
    echo "== shard $k/3 =="
    "$workdir/flashextract" batch -load "$workdir/prog.json" -type text \
        -ordered -workers 2 -prefilter -shard "$k/3" \
        -out "$workdir/shard$k.ndjson" \
        "$workdir/corpus/"'*.txt' 2> "$workdir/shard$k.log"
    owned=$(wc -l < "$workdir/shard$k.ndjson")
    dropped=$(sed -n 's/.*, \([0-9][0-9]*\) shard-dropped.*/\1/p' "$workdir/shard$k.log" | tail -n 1)
    echo "shard $k/3: $owned owned, ${dropped:-0} dropped"
    [ "$owned" -gt 0 ] \
        || { echo "FAIL: shard $k/3 owns no documents (degenerate partition)"; exit 1; }
    [ $((owned + ${dropped:-0})) -eq "$total" ] \
        || { echo "FAIL: shard $k/3 owned+dropped != $total"; exit 1; }
    owned_sum=$((owned_sum + owned))
done

[ "$owned_sum" -eq "$total" ] \
    || { echo "FAIL: shards own $owned_sum records in total, want $total (overlap or gap)"; exit 1; }

echo "== union-equals-unsharded differential =="
sort "$workdir"/shard[123].ndjson > "$workdir/union.sorted"
sort "$workdir/full.ndjson" > "$workdir/full.sorted"
if ! diff -u "$workdir/full.sorted" "$workdir/union.sorted"; then
    echo "FAIL: the union of the three shards differs from the unsharded run"
    exit 1
fi

echo "shard smoke: OK"
