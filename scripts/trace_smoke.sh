#!/usr/bin/env bash
# trace_smoke.sh — end-to-end smoke test of the serving-runtime admin
# endpoint: learns a tiny program, starts `flashextract batch -admin` over
# a generated corpus, curls /healthz and /metrics while the server lingers,
# regex-asserts the Prometheus exposition is well-formed, checks
# /trace/last carries document span trees, then SIGINTs the process and
# requires a clean exit (the binary self-checks for goroutine leaks after
# the drain and exits nonzero on any).
#
# Usage: scripts/trace_smoke.sh   (from the repository root)
set -euo pipefail

workdir=$(mktemp -d)
admin_port=${ADMIN_PORT:-18080}
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building flashextract =="
go build -o "$workdir/flashextract" ./cmd/flashextract

echo "== learning a program from examples =="
cat > "$workdir/doc.txt" <<'EOF'
inventory
Chair: Aeron (price: $540.00)
Chair: Tulip (price: $99.99)
EOF
cat > "$workdir/schema.fx" <<'EOF'
Struct(Names: Seq([name] String), Prices: Seq([price] Float))
EOF
cat > "$workdir/examples.fx" <<'EOF'
+ name find:Aeron:0
+ name find:Tulip:0
+ price find:540.00:0
+ price find:99.99:0
EOF
"$workdir/flashextract" -type text -in "$workdir/doc.txt" \
    -schema "$workdir/schema.fx" -examples "$workdir/examples.fx" \
    -save "$workdir/prog.json" > /dev/null

echo "== generating a batch corpus =="
mkdir "$workdir/corpus"
i=0
for name in Bistro Windsor Wishbone Panton Bertoia Barcelona Wassily Eames; do
    i=$((i + 1))
    printf 'inventory\nChair: %s (price: $%d.50)\n' "$name" $((i * 10 + 30)) \
        > "$workdir/corpus/doc$i.txt"
done
# doc9 is a directory, so its read fails and yields a structured error
# record — exercising the failure-isolation path and the error counter.
mkdir "$workdir/corpus/doc9.txt"

echo "== starting flashextract batch -admin :$admin_port =="
"$workdir/flashextract" batch -load "$workdir/prog.json" -type text \
    -admin "127.0.0.1:$admin_port" -ordered -out "$workdir/results.ndjson" \
    -log-json "$workdir/corpus/"'*.txt' 2> "$workdir/batch.log" &
pid=$!

base="http://127.0.0.1:$admin_port"
echo "== waiting for the admin endpoint =="
for _ in $(seq 1 50); do
    if curl -sf "$base/healthz" > /dev/null 2>&1; then break; fi
    kill -0 "$pid" 2>/dev/null || { echo "batch exited early"; cat "$workdir/batch.log"; exit 1; }
    sleep 0.1
done

echo "== /healthz =="
health=$(curl -sf "$base/healthz")
echo "$health"
echo "$health" | grep -Eq '"status": *"(running|done)"' \
    || { echo "FAIL: healthz status not running/done"; exit 1; }
echo "$health" | grep -Eq '"processed": *[0-9]+' \
    || { echo "FAIL: healthz missing processed count"; exit 1; }

# Give the batch time to finish so the metrics below are complete; the
# process lingers serving after completion until interrupted.
for _ in $(seq 1 100); do
    curl -sf "$base/healthz" | grep -q '"status": "done"' && break
    sleep 0.1
done

echo "== /metrics =="
metrics=$(curl -sf "$base/metrics")
echo "$metrics" | head -n 12
# Every line must be a comment or `name[{le="..."}] value` — the
# Prometheus text exposition grammar the scrapers parse.
echo "$metrics" | grep -Evq '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? (-?[0-9][0-9eE+.\-]*|\+Inf))$' \
    && { echo "FAIL: invalid exposition line:"; \
         echo "$metrics" | grep -Ev '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? (-?[0-9][0-9eE+.\-]*|\+Inf))$'; \
         exit 1; }
echo "$metrics" | grep -q '^batch_docs_processed 9$' \
    || { echo "FAIL: expected batch_docs_processed 9"; exit 1; }
# Only the deliberately corrupt doc9 may fail; transfer failures on the
# well-formed documents would show up here.
echo "$metrics" | grep -q '^batch_errors 1$' \
    || { echo "FAIL: expected batch_errors 1"; exit 1; }
echo "$metrics" | grep -q 'batch_doc_run_seconds_bucket{le="+Inf"} 9' \
    || { echo "FAIL: expected 9 observations in the latency histogram"; exit 1; }

echo "== /trace/last =="
traces=$(curl -sf "$base/trace/last?n=3")
echo "$traces" | grep -q '"schema": "flashextract-trace/v1"' \
    || { echo "FAIL: trace/last missing schema marker"; exit 1; }
echo "$traces" | grep -Eq '"name": *"doc:' \
    || { echo "FAIL: trace/last has no document spans"; exit 1; }

echo "== /debug/pprof =="
curl -sf "$base/debug/pprof/goroutine?debug=1" | grep -q goroutine \
    || { echo "FAIL: pprof goroutine profile unavailable"; exit 1; }

echo "== SIGINT drain + goroutine-leak self-check =="
kill -INT "$pid"
if ! wait "$pid"; then
    echo "FAIL: batch exited nonzero after SIGINT (goroutine leak or unclean drain)"
    cat "$workdir/batch.log"
    exit 1
fi
pid=""

echo "== output sanity =="
[ "$(wc -l < "$workdir/results.ndjson")" -eq 9 ] \
    || { echo "FAIL: expected 9 NDJSON records"; exit 1; }

echo "trace smoke: OK"
