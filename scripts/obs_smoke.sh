#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke test of the request-scoped observability
# plane: starts `flashextract serve -access-log`, issues a scan and an
# explain over the protocol, and asserts that (1) the explain response
# carries a flashextract-explain/v1 frame whose leaves hold byte spans,
# (2) every access-log line is valid JSON with a non-empty request id,
# (3) the Prometheus exposition carries the serve_explain_* counters with
# their HELP/TYPE headers, and (4) /requests retains the requests with
# their ids and traces. The explain CLI and batch -provenance sidecar are
# smoked too, since they share the capture path.
#
# Usage: scripts/obs_smoke.sh   (from the repository root)
set -euo pipefail

workdir=$(mktemp -d)
admin_port=${ADMIN_PORT:-18083}
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building flashextract =="
go build -o "$workdir/flashextract" ./cmd/flashextract

echo "== learning the program =="
cat > "$workdir/doc.txt" <<'EOF'
inventory
Chair: Aeron (price: $540.00)
Chair: Tulip (price: $99.99)
EOF
cat > "$workdir/schema.fx" <<'EOF'
Struct(Names: Seq([name] String), Prices: Seq([price] Float))
EOF
cat > "$workdir/examples.fx" <<'EOF'
+ name find:Aeron:0
+ name find:Tulip:0
+ price find:540.00:0
+ price find:99.99:0
EOF
mkdir "$workdir/programs"
"$workdir/flashextract" -type text -in "$workdir/doc.txt" \
    -schema "$workdir/schema.fx" -examples "$workdir/examples.fx" \
    -save "$workdir/programs/chairs@1.text.json" > /dev/null

echo "== starting flashextract serve -access-log -admin :$admin_port =="
mkfifo "$workdir/in"
"$workdir/flashextract" serve -programs "$workdir/programs" \
    -admin "127.0.0.1:$admin_port" -access-log "$workdir/access.ndjson" \
    -slow-requests 8 -log-json \
    < "$workdir/in" > "$workdir/out.ndjson" 2> "$workdir/serve.log" &
pid=$!
exec 3> "$workdir/in"

wait_frames() {
    for _ in $(seq 1 100); do
        [ -f "$workdir/out.ndjson" ] \
            && [ "$(wc -l < "$workdir/out.ndjson")" -ge "$1" ] && return 0
        kill -0 "$pid" 2>/dev/null \
            || { echo "serve exited early"; cat "$workdir/serve.log"; exit 1; }
        sleep 0.1
    done
    echo "FAIL: timed out waiting for $1 frames"; cat "$workdir/out.ndjson"; exit 1
}
frame() { sed -n "$1p" "$workdir/out.ndjson"; }

wait_frames 1
frame 1 | grep -q '"op":"ready"' || { echo "FAIL: no ready frame"; exit 1; }

echo "== scan =="
printf '{"id":"s1","op":"scan","program":"chairs","doc_name":"bistro.txt","content":"inventory\\nChair: Bistro (price: $75.40)\\n"}\n' >&3
wait_frames 2
frame 2 | grep -q '"ok":true' || { echo "FAIL: scan not ok"; frame 2; exit 1; }

echo "== explain =="
printf '{"id":"e1","op":"explain","program":"chairs","doc_name":"bistro.txt","content":"inventory\\nChair: Bistro (price: $75.40)\\n"}\n' >&3
wait_frames 3
frame 3 | grep -q '"ok":true' || { echo "FAIL: explain not ok"; frame 3; exit 1; }
frame 3 | jq -e '.explains | length == 1' > /dev/null \
    || { echo "FAIL: explain response has no provenance frame"; frame 3; exit 1; }
frame 3 | jq -e '.explains[0].schema == "flashextract-explain/v1"' > /dev/null \
    || { echo "FAIL: provenance frame schema marker"; frame 3; exit 1; }
frame 3 | jq -e '.explains[0].leaves | length > 0' > /dev/null \
    || { echo "FAIL: provenance frame has no leaves"; frame 3; exit 1; }
frame 3 | jq -e '[.explains[0].leaves[] | select(.span.space == "bytes")] | length > 0' > /dev/null \
    || { echo "FAIL: no leaf carries a source byte range"; frame 3; exit 1; }
# The explain record must match the scan record for the same document —
# capture is observability, never behavior.
[ "$(frame 3 | jq -cS .record)" = "$(frame 2 | jq -cS .record)" ] \
    || { echo "FAIL: explain record differs from scan record"; exit 1; }

echo "== explain error frame =="
printf '{"id":"e2","op":"explain","program":"tables","content":"x"}\n' >&3
wait_frames 4
frame 4 | grep -q '"code":"unknown_program"' \
    || { echo "FAIL: expected unknown_program error frame"; frame 4; exit 1; }

base="http://127.0.0.1:$admin_port"
echo "== exposition carries serve_explain_* =="
metrics=$(curl -sf "$base/metrics")
echo "$metrics" | grep -q '^# HELP serve_explain_requests ' \
    || { echo "FAIL: serve_explain_requests HELP line absent"; exit 1; }
echo "$metrics" | grep -q '^# TYPE serve_explain_requests counter$' \
    || { echo "FAIL: serve_explain_requests TYPE line absent"; exit 1; }
echo "$metrics" | grep -q '^serve_explain_requests 2$' \
    || { echo "FAIL: serve_explain_requests counter absent or wrong"; exit 1; }
echo "$metrics" | grep -q '^serve_explain_errors 1$' \
    || { echo "FAIL: serve_explain_errors counter absent or wrong"; exit 1; }

echo "== /requests retains ids and traces =="
requests=$(curl -sf "$base/requests")
echo "$requests" | jq -e '.schema == "flashextract-requests/v1"' > /dev/null \
    || { echo "FAIL: /requests schema marker"; exit 1; }
echo "$requests" | jq -e '[.requests[] | select(.request_id == "")] | length == 0' > /dev/null \
    || { echo "FAIL: /requests entry without request id"; exit 1; }
echo "$requests" | jq -e '[.requests[] | select(.op == "explain" and .status == "ok")] | length == 1' > /dev/null \
    || { echo "FAIL: ok explain request not retained in /requests"; exit 1; }
echo "$requests" | jq -e '[.requests[] | select(.op == "explain" and .status == "unknown_program")] | length == 1' > /dev/null \
    || { echo "FAIL: failed explain request not retained in /requests"; exit 1; }
echo "$requests" | jq -e '[.requests[] | select(.trace.name | startswith("request:"))] | length > 0' > /dev/null \
    || { echo "FAIL: no retained request carries a request root trace"; exit 1; }

echo "== close + access-log validation =="
printf '{"id":"z","op":"close"}\n' >&3
exec 3>&-
wait "$pid" || { echo "FAIL: serve exited nonzero"; cat "$workdir/serve.log"; exit 1; }
pid=""

# One line per handled frame: scan, explain, explain error, close.
[ "$(wc -l < "$workdir/access.ndjson")" -eq 4 ] \
    || { echo "FAIL: expected 4 access-log lines"; cat "$workdir/access.ndjson"; exit 1; }
while IFS= read -r line; do
    echo "$line" | jq -e . > /dev/null \
        || { echo "FAIL: access-log line is not valid JSON: $line"; exit 1; }
    echo "$line" | jq -e '.schema == "flashextract-access-log/v1"' > /dev/null \
        || { echo "FAIL: access-log line missing schema: $line"; exit 1; }
    echo "$line" | jq -e '.request_id | length > 0' > /dev/null \
        || { echo "FAIL: access-log line has empty request id: $line"; exit 1; }
done < "$workdir/access.ndjson"
[ "$(jq -r .request_id "$workdir/access.ndjson" | sort -u | wc -l)" -eq 4 ] \
    || { echo "FAIL: request ids not unique across access-log lines"; exit 1; }

echo "== explain CLI =="
"$workdir/flashextract" explain -load "$workdir/programs/chairs@1.text.json" \
    -type text "$workdir/doc.txt" > "$workdir/explain.ndjson" 2> /dev/null
[ "$(wc -l < "$workdir/explain.ndjson")" -eq 1 ] \
    || { echo "FAIL: explain CLI frame count"; exit 1; }
jq -e '.schema == "flashextract-explain/v1" and (.leaves | length > 0)' \
    "$workdir/explain.ndjson" > /dev/null \
    || { echo "FAIL: explain CLI frame malformed"; cat "$workdir/explain.ndjson"; exit 1; }

echo "== batch -provenance differential =="
"$workdir/flashextract" batch -load "$workdir/programs/chairs@1.text.json" \
    -type text -ordered -out "$workdir/plain.ndjson" "$workdir/doc.txt" 2> /dev/null
"$workdir/flashextract" batch -load "$workdir/programs/chairs@1.text.json" \
    -type text -ordered -out "$workdir/prov.ndjson" \
    -provenance "$workdir/sidecar.ndjson" "$workdir/doc.txt" 2> /dev/null
cmp -s "$workdir/plain.ndjson" "$workdir/prov.ndjson" \
    || { echo "FAIL: -provenance perturbed the record stream"; exit 1; }
[ "$(wc -l < "$workdir/sidecar.ndjson")" -eq 1 ] \
    || { echo "FAIL: sidecar frame count"; exit 1; }

echo "obs smoke: OK"
