package flashextract_test

import (
	"fmt"

	"flashextract"
)

// Example demonstrates the complete workflow on a small text file:
// schema, examples, learning, extraction, and transfer to a second file.
func Example() {
	doc := flashextract.NewTextDocument("inventory\nBolt: 500\nNut: 480\nWasher: 900\n")
	sch := flashextract.MustParseSchema(`Seq([rec] Struct(Part: [p] String, Qty: [q] Int))`)
	s := flashextract.NewSession(doc, sch)

	r0, _ := doc.FindRegion("Bolt: 500", 0)
	r1, _ := doc.FindRegion("Nut: 480", 0)
	_ = s.AddPositive("rec", r0)
	_ = s.AddPositive("rec", r1)
	if _, _, err := s.Learn("rec"); err != nil {
		fmt.Println("learn rec:", err)
		return
	}
	_ = s.Commit("rec")

	p0, _ := doc.FindRegion("Bolt", 0)
	_ = s.AddPositive("p", p0)
	if _, _, err := s.Learn("p"); err != nil {
		fmt.Println("learn p:", err)
		return
	}
	_ = s.Commit("p")

	q0, _ := doc.FindRegion("500", 0)
	_ = s.AddPositive("q", q0)
	if _, _, err := s.Learn("q"); err != nil {
		fmt.Println("learn q:", err)
		return
	}
	_ = s.Commit("q")

	instance, _ := s.Extract()
	fmt.Print(flashextract.ToCSV(sch, instance))

	// The learned program runs unchanged on a similar file.
	program, _ := s.Program()
	other := flashextract.NewTextDocument("inventory\nAnchor: 120\nScrew: 650\n")
	instance2, _, _ := program.Run(other)
	fmt.Print(flashextract.ToCSV(sch, instance2))

	// Output:
	// item.Part,item.Qty
	// Bolt,500
	// Nut,480
	// Washer,900
	// item.Part,item.Qty
	// Anchor,120
	// Screw,650
}

// ExampleSession_InferStructure shows the bottom-up workflow: leaves
// first, then the record structure inferred with no examples.
func ExampleSession_InferStructure() {
	doc := flashextract.NewTextDocument("directory\nJohn Smith: 425-555-0199\nMary Major: 206-555-0133\n")
	sch := flashextract.MustParseSchema(`Seq([e] Struct(Name: [n] String, Phone: [ph] String))`)
	s := flashextract.NewSession(doc, sch)

	for color, sub := range map[string]string{"n": "John Smith", "ph": "425-555-0199"} {
		r, _ := doc.FindRegion(sub, 0)
		_ = s.AddPositive(color, r)
		if _, _, err := s.Learn(color); err != nil {
			fmt.Println(err)
			return
		}
		_ = s.Commit(color)
	}
	_, inferred, err := s.InferStructure("e")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("records inferred:", len(inferred))
	_ = s.Commit("e")
	instance, _ := s.Extract()
	fmt.Println(instance)

	// Output:
	// records inferred: 2
	// [{Name: "John Smith", Phone: "425-555-0199"}, {Name: "Mary Major", Phone: "206-555-0133"}]
}

// ExampleSaveProgram shows program artifacts: serialize a learned program
// and reload it elsewhere.
func ExampleSaveProgram() {
	doc := flashextract.NewTextDocument("a=1\nb=22\nc=333\n")
	sch := flashextract.MustParseSchema(`Seq([v] Int)`)
	s := flashextract.NewSession(doc, sch)
	r0, _ := doc.FindRegion("1", 0)
	r1, _ := doc.FindRegion("22", 0)
	_ = s.AddPositive("v", r0)
	_ = s.AddPositive("v", r1)
	if _, _, err := s.Learn("v"); err != nil {
		fmt.Println(err)
		return
	}
	_ = s.Commit("v")
	program, _ := s.Program()
	artifact, _ := flashextract.SaveProgram(program, doc)

	other := flashextract.NewTextDocument("x=7\ny=88\n")
	loaded, _ := flashextract.LoadProgram(artifact, other)
	instance, _, _ := loaded.Run(other)
	fmt.Println(instance)

	// Output:
	// ["7", "88"]
}
